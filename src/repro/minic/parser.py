"""Recursive-descent parser for mini-C.

Produces a :class:`~repro.minic.cast.Program`.  Types are built
directly against a :class:`~repro.ctype.declparse.TypeEnv` using the
same layout engine as the rest of the system, so a struct declared in
mini-C source is byte-identical to one declared through the builder
API or seen by DUEL.
"""

from __future__ import annotations

from typing import Optional

from repro.ctype.declparse import TypeEnv
from repro.ctype.layout import MemberDecl, complete_struct, complete_union
from repro.ctype.types import (
    ArrayType,
    BOOL,
    CHAR,
    CType,
    DOUBLE,
    EnumType,
    FLOAT,
    FunctionType,
    INT,
    LDOUBLE,
    LLONG,
    LONG,
    PointerType,
    SCHAR,
    SHORT,
    StructType,
    UCHAR,
    UINT,
    ULLONG,
    ULONG,
    UnionType,
    USHORT,
    VOID,
)
from repro.minic import cast as A
from repro.minic.clex import C_KEYWORDS, CTokenStream
from repro.minic.errors import MiniCSyntaxError

_BASE_COMBOS = {
    ("void",): VOID, ("_Bool",): BOOL,
    ("char",): CHAR, ("char", "signed"): SCHAR, ("char", "unsigned"): UCHAR,
    ("short",): SHORT, ("int", "short"): SHORT,
    ("short", "unsigned"): USHORT, ("int", "short", "unsigned"): USHORT,
    ("int",): INT, ("signed",): INT, ("int", "signed"): INT,
    ("unsigned",): UINT, ("int", "unsigned"): UINT,
    ("long",): LONG, ("int", "long"): LONG,
    ("long", "unsigned"): ULONG, ("int", "long", "unsigned"): ULONG,
    ("long", "long"): LLONG, ("int", "long", "long"): LLONG,
    ("long", "long", "unsigned"): ULLONG,
    ("int", "long", "long", "unsigned"): ULLONG,
    ("float",): FLOAT, ("double",): DOUBLE, ("double", "long"): LDOUBLE,
}

_TYPE_WORDS = frozenset(
    "void char short int long signed unsigned float double _Bool "
    "struct union enum const volatile".split())

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")


class CParser:
    """Parses one translation unit."""

    def __init__(self, source: str, env: Optional[TypeEnv] = None):
        self.s = CTokenStream(source)
        self.env = env if env is not None else TypeEnv()

    # -- entry point -----------------------------------------------------
    def parse_program(self) -> A.Program:
        variables: list[A.VarDef] = []
        functions: list[A.FuncDef] = []
        while not self.s.at_end:
            self._external_declaration(variables, functions)
        return A.Program(tuple(variables), tuple(functions))

    # -- external declarations ----------------------------------------------
    def _external_declaration(self, variables, functions) -> None:
        is_typedef = False
        while True:
            token = self.s.peek()
            if token.kind == "name" and token.text in (
                    "static", "extern", "register", "auto"):
                self.s.next()
            elif token.kind == "name" and token.text == "typedef":
                self.s.next()
                is_typedef = True
            else:
                break
        base = self._specifiers()
        if self.s.accept(";"):
            return  # tag-only declaration
        first = True
        while True:
            name, ctype, params = self._declarator(base)
            if not name:
                raise self.s.error("declaration is missing a name")
            if is_typedef:
                self.env.add_typedef(name, ctype)
            elif first and ctype.is_function and self.s.peek().is_op("{"):
                body = self._block()
                functions.append(A.FuncDef(name, ctype, tuple(params), body,
                                           line=self.s.peek().line))
                return
            else:
                init = None
                if self.s.accept("="):
                    init = self._initializer()
                if ctype.is_function:
                    pass  # prototype only; calls resolve dynamically
                else:
                    ctype = self._complete_array_from_init(ctype, init)
                    variables.append(A.VarDef(name, ctype, init))
            first = False
            if self.s.accept(","):
                continue
            self.s.expect(";")
            return

    def _complete_array_from_init(self, ctype: CType,
                                  init: Optional[A.Initializer]) -> CType:
        stripped = ctype.strip_typedefs()
        if (isinstance(stripped, ArrayType) and stripped.length is None
                and init is not None):
            if init.is_list:
                return ArrayType(stripped.element, len(init.items))
            if init.expr is not None and isinstance(init.expr, A.StrLit):
                return ArrayType(stripped.element, len(init.expr.value) + 1)
        return ctype

    # -- type specifiers -------------------------------------------------------
    def _starts_type(self, ahead: int = 0) -> bool:
        token = self.s.peek(ahead)
        if token.kind != "name":
            return False
        if token.text in _TYPE_WORDS:
            return True
        return self.env.is_type_name(token.text)

    def _specifiers(self) -> CType:
        words: list[str] = []
        record: Optional[CType] = None
        while True:
            token = self.s.peek()
            if token.kind != "name":
                break
            text = token.text
            if text in ("const", "volatile"):
                self.s.next()
                continue
            if text in ("struct", "union"):
                self.s.next()
                record = self._record(text)
                continue
            if text == "enum":
                self.s.next()
                record = self._enum()
                continue
            if text in _TYPE_WORDS:
                words.append(self.s.next().text)
                continue
            if (self.env.is_type_name(text) and not words
                    and record is None):
                self.s.next()
                return self.env.typedefs[text]
            break
        if record is not None:
            if words:
                raise self.s.error("bad type specifier combination")
            return record
        if not words:
            raise self.s.error(
                f"expected type, found {self.s.peek().text!r}")
        combo = tuple(sorted(words))
        base = _BASE_COMBOS.get(combo)
        if base is None:
            raise self.s.error(
                f"invalid type specifiers {' '.join(words)!r}")
        return base

    def _record(self, keyword: str) -> CType:
        tag = None
        if self.s.peek().kind == "name" and self.s.peek().text not in C_KEYWORDS:
            tag = self.s.next().text
        if keyword == "struct":
            record = self.env.struct_tag(tag) if tag else StructType(None)
        else:
            record = self.env.union_tag(tag) if tag else UnionType(None)
        if self.s.accept("{"):
            members: list[MemberDecl] = []
            while not self.s.accept("}"):
                base = self._specifiers()
                if self.s.accept(";"):
                    members.append(MemberDecl("", base))
                    continue
                while True:
                    if self.s.peek().is_op(":"):
                        self.s.next()
                        width = self._const_int()
                        members.append(MemberDecl("", base, width))
                    else:
                        name, ctype, _ = self._declarator(base)
                        width = None
                        if self.s.accept(":"):
                            width = self._const_int()
                        members.append(MemberDecl(name, ctype, width))
                    if self.s.accept(","):
                        continue
                    self.s.expect(";")
                    break
            if keyword == "struct":
                complete_struct(record, members)
            else:
                complete_union(record, members)
        return record

    def _enum(self) -> EnumType:
        tag = None
        if self.s.peek().kind == "name" and self.s.peek().text not in C_KEYWORDS:
            tag = self.s.next().text
        enum = self.env.enum_tag(tag) if tag else EnumType(None)
        if self.s.accept("{"):
            value = 0
            while not self.s.accept("}"):
                name = self.s.expect_name().text
                if self.s.accept("="):
                    value = self._const_int()
                enum.enumerators[name] = value
                value += 1
                if not self.s.accept(","):
                    self.s.expect("}")
                    break
            self.env.register_enumerators(enum)
        return enum

    def _const_int(self) -> int:
        expr = self._conditional()
        return _fold_const(expr, self.env)

    # -- declarators -----------------------------------------------------------
    def _declarator(self, base: CType) -> tuple[str, CType, list[str]]:
        """Returns (name, type, parameter_names_if_function)."""
        while self.s.accept("*"):
            while self.s.accept_name("const", "volatile"):
                pass
            base = PointerType(base)
        name = ""
        params: list[str] = []
        inner_start = None
        if self.s.peek().is_op("(") and self._nested_declarator():
            self.s.next()
            inner_start = self.s.i
            depth = 1
            while depth:
                token = self.s.next()
                if token.is_op("("):
                    depth += 1
                elif token.is_op(")"):
                    depth -= 1
                elif token.kind == "eof":
                    raise self.s.error("unterminated declarator")
            inner_end = self.s.i - 1
        elif (self.s.peek().kind == "name"
                and self.s.peek().text not in C_KEYWORDS):
            name = self.s.next().text
        suffixes: list[tuple] = []
        while True:
            if self.s.accept("["):
                if self.s.accept("]"):
                    suffixes.append(("array", None))
                else:
                    length = self._const_int()
                    self.s.expect("]")
                    suffixes.append(("array", length))
            elif self.s.peek().is_op("("):
                self.s.next()
                ptypes, pnames, varargs = self._param_list()
                suffixes.append(("func", (ptypes, varargs)))
                params = pnames
            else:
                break
        ctype = base
        for tag, payload in reversed(suffixes):
            if tag == "array":
                ctype = ArrayType(ctype, payload)
            else:
                ptypes, varargs = payload
                ctype = FunctionType(ctype, tuple(ptypes), varargs)
        if inner_start is not None:
            saved_i = self.s.i
            self.s.i = inner_start
            name, ctype, params = self._declarator(ctype)
            if self.s.i != inner_end:
                raise self.s.error("bad nested declarator")
            self.s.i = saved_i
        return name, ctype, params

    def _nested_declarator(self) -> bool:
        nxt = self.s.peek(1)
        if nxt.is_op("*", "("):
            return True
        return (nxt.kind == "name" and nxt.text not in C_KEYWORDS
                and not self.env.is_type_name(nxt.text))

    def _param_list(self) -> tuple[list[CType], list[str], bool]:
        ptypes: list[CType] = []
        pnames: list[str] = []
        varargs = False
        if self.s.accept(")"):
            return ptypes, pnames, varargs
        while True:
            if self.s.accept("..."):
                varargs = True
                self.s.expect(")")
                return ptypes, pnames, varargs
            base = self._specifiers()
            name, ctype, _ = self._declarator(base)
            if ctype.is_void and not name:
                pass  # (void)
            else:
                if ctype.is_array:
                    ctype = ctype.strip_typedefs().decay()
                ptypes.append(ctype)
                pnames.append(name)
            if self.s.accept(","):
                continue
            self.s.expect(")")
            return ptypes, pnames, varargs

    # -- initializers --------------------------------------------------------
    def _initializer(self) -> A.Initializer:
        if self.s.accept("{"):
            items: list[A.Initializer] = []
            while not self.s.accept("}"):
                items.append(self._initializer())
                if not self.s.accept(","):
                    self.s.expect("}")
                    break
            return A.Initializer(items=tuple(items))
        return A.Initializer(expr=self._assignment())

    # -- statements -------------------------------------------------------------
    def _block(self) -> A.Block:
        line = self.s.peek().line
        self.s.expect("{")
        body: list[A.Stmt] = []
        while not self.s.accept("}"):
            body.append(self._statement())
        return A.Block(tuple(body), line=line)

    def _statement(self) -> A.Stmt:
        token = self.s.peek()
        line = token.line
        if token.is_op("{"):
            return self._block()
        if token.is_op(";"):
            self.s.next()
            return A.ExprStmt(None, line=line)
        if token.kind == "name":
            text = token.text
            if text == "if":
                return self._if_stmt()
            if text == "while":
                return self._while_stmt()
            if text == "do":
                return self._do_stmt()
            if text == "for":
                return self._for_stmt()
            if text == "switch":
                return self._switch_stmt()
            if text == "break":
                self.s.next()
                self.s.expect(";")
                return A.BreakStmt(line=line)
            if text == "continue":
                self.s.next()
                self.s.expect(";")
                return A.ContinueStmt(line=line)
            if text == "return":
                self.s.next()
                value = None
                if not self.s.peek().is_op(";"):
                    value = self._expression()
                self.s.expect(";")
                return A.ReturnStmt(value, line=line)
            if self._starts_type() or text == "typedef":
                return self._decl_stmt()
        stmt = A.ExprStmt(self._expression(), line=line)
        self.s.expect(";")
        return stmt

    def _decl_stmt(self) -> A.DeclStmt:
        line = self.s.peek().line
        if self.s.accept_name("typedef"):
            base = self._specifiers()
            name, ctype, _ = self._declarator(base)
            self.env.add_typedef(name, ctype)
            self.s.expect(";")
            return A.DeclStmt((), line=line)
        base = self._specifiers()
        decls: list[tuple[str, CType, Optional[A.Initializer]]] = []
        if self.s.accept(";"):
            return A.DeclStmt((), line=line)  # tag-only
        while True:
            name, ctype, _ = self._declarator(base)
            init = None
            if self.s.accept("="):
                init = self._initializer()
            ctype = self._complete_array_from_init(ctype, init)
            decls.append((name, ctype, init))
            if self.s.accept(","):
                continue
            self.s.expect(";")
            break
        return A.DeclStmt(tuple(decls), line=line)

    def _if_stmt(self) -> A.IfStmt:
        line = self.s.next().line  # 'if'
        self.s.expect("(")
        cond = self._expression()
        self.s.expect(")")
        then = self._statement()
        els = None
        if self.s.accept_name("else"):
            els = self._statement()
        return A.IfStmt(cond, then, els, line=line)

    def _while_stmt(self) -> A.WhileStmt:
        line = self.s.next().line
        self.s.expect("(")
        cond = self._expression()
        self.s.expect(")")
        return A.WhileStmt(cond, self._statement(), line=line)

    def _do_stmt(self) -> A.DoWhileStmt:
        line = self.s.next().line
        body = self._statement()
        if not self.s.accept_name("while"):
            raise self.s.error("expected 'while' after do body")
        self.s.expect("(")
        cond = self._expression()
        self.s.expect(")")
        self.s.expect(";")
        return A.DoWhileStmt(body, cond, line=line)

    def _for_stmt(self) -> A.ForStmt:
        line = self.s.next().line
        self.s.expect("(")
        init: Optional[object] = None
        if not self.s.peek().is_op(";"):
            if self._starts_type():
                init = self._decl_stmt()  # consumes the ';'
            else:
                init = self._expression()
                self.s.expect(";")
        else:
            self.s.next()
        cond = None
        if not self.s.peek().is_op(";"):
            cond = self._expression()
        self.s.expect(";")
        step = None
        if not self.s.peek().is_op(")"):
            step = self._expression()
        self.s.expect(")")
        return A.ForStmt(init, cond, step, self._statement(), line=line)

    def _switch_stmt(self) -> A.SwitchStmt:
        line = self.s.next().line
        self.s.expect("(")
        value = self._expression()
        self.s.expect(")")
        self.s.expect("{")
        cases: list[tuple[Optional[int], tuple[A.Stmt, ...]]] = []
        current: Optional[list[A.Stmt]] = None
        current_key: Optional[int] = None
        started = False
        while not self.s.accept("}"):
            if self.s.accept_name("case"):
                if started:
                    cases.append((current_key, tuple(current or ())))
                current_key = self._const_int()
                self.s.expect(":")
                current = []
                started = True
            elif self.s.accept_name("default"):
                if started:
                    cases.append((current_key, tuple(current or ())))
                current_key = None
                self.s.expect(":")
                current = []
                started = True
            else:
                if current is None:
                    raise self.s.error("statement before first case label")
                current.append(self._statement())
        if started:
            cases.append((current_key, tuple(current or ())))
        return A.SwitchStmt(value, tuple(cases), line=line)

    # -- expressions ------------------------------------------------------------
    def _expression(self) -> A.Expr:
        expr = self._assignment()
        while self.s.accept(","):
            expr = A.CommaExpr(expr, self._assignment(), line=expr.line)
        return expr

    def _assignment(self) -> A.Expr:
        left = self._conditional()
        token = self.s.peek()
        if token.is_op(*_ASSIGN_OPS):
            self.s.next()
            right = self._assignment()
            return A.AssignExpr(token.text, left, right, line=token.line)
        return left

    def _conditional(self) -> A.Expr:
        cond = self._logical_or()
        if self.s.accept("?"):
            then = self._expression()
            self.s.expect(":")
            els = self._conditional()
            return A.CondExpr(cond, then, els, line=cond.line)
        return cond

    def _logical_or(self) -> A.Expr:
        node = self._logical_and()
        while self.s.accept("||"):
            node = A.LogicalExpr("||", node, self._logical_and(),
                                 line=node.line)
        return node

    def _logical_and(self) -> A.Expr:
        node = self._bit_or()
        while self.s.accept("&&"):
            node = A.LogicalExpr("&&", node, self._bit_or(), line=node.line)
        return node

    def _bit_or(self) -> A.Expr:
        node = self._bit_xor()
        while self.s.accept("|"):
            node = A.BinExpr("|", node, self._bit_xor(), line=node.line)
        return node

    def _bit_xor(self) -> A.Expr:
        node = self._bit_and()
        while self.s.accept("^"):
            node = A.BinExpr("^", node, self._bit_and(), line=node.line)
        return node

    def _bit_and(self) -> A.Expr:
        node = self._equality()
        while self.s.accept("&"):
            node = A.BinExpr("&", node, self._equality(), line=node.line)
        return node

    def _equality(self) -> A.Expr:
        node = self._relational()
        while True:
            token = self.s.accept("==", "!=")
            if token is None:
                return node
            node = A.BinExpr(token.text, node, self._relational(),
                             line=token.line)

    def _relational(self) -> A.Expr:
        node = self._shift()
        while True:
            token = self.s.accept("<", ">", "<=", ">=")
            if token is None:
                return node
            node = A.BinExpr(token.text, node, self._shift(), line=token.line)

    def _shift(self) -> A.Expr:
        node = self._additive()
        while True:
            token = self.s.accept("<<", ">>")
            if token is None:
                return node
            node = A.BinExpr(token.text, node, self._additive(),
                             line=token.line)

    def _additive(self) -> A.Expr:
        node = self._multiplicative()
        while True:
            token = self.s.accept("+", "-")
            if token is None:
                return node
            node = A.BinExpr(token.text, node, self._multiplicative(),
                             line=token.line)

    def _multiplicative(self) -> A.Expr:
        node = self._unary()
        while True:
            token = self.s.accept("*", "/", "%")
            if token is None:
                return node
            node = A.BinExpr(token.text, node, self._unary(),
                             line=token.line)

    def _unary(self) -> A.Expr:
        token = self.s.peek()
        if token.is_op("-", "+", "!", "~", "*", "&"):
            self.s.next()
            return A.UnaryExpr(token.text, self._unary(), line=token.line)
        if token.is_op("++", "--"):
            self.s.next()
            return A.IncDecExpr(token.text, self._unary(), postfix=False,
                                line=token.line)
        if token.is_op("(") and self._starts_type(1):
            self.s.next()
            base = self._specifiers()
            _, ctype, _ = self._declarator(base)
            self.s.expect(")")
            return A.CastExpr(ctype, self._unary(), line=token.line)
        if token.kind == "name" and token.text == "sizeof":
            self.s.next()
            if self.s.peek().is_op("(") and self._starts_type(1):
                self.s.next()
                base = self._specifiers()
                _, ctype, _ = self._declarator(base)
                self.s.expect(")")
                return A.SizeofExpr(ctype=ctype, line=token.line)
            return A.SizeofExpr(operand=self._unary(), line=token.line)
        return self._postfix()

    def _postfix(self) -> A.Expr:
        node = self._primary()
        while True:
            token = self.s.peek()
            if token.is_op("["):
                self.s.next()
                index = self._expression()
                self.s.expect("]")
                node = A.IndexExpr(node, index, line=token.line)
            elif token.is_op("("):
                self.s.next()
                args: list[A.Expr] = []
                if not self.s.peek().is_op(")"):
                    args.append(self._assignment())
                    while self.s.accept(","):
                        args.append(self._assignment())
                self.s.expect(")")
                node = A.CallExpr(node, tuple(args), line=token.line)
            elif token.is_op(".", "->"):
                self.s.next()
                name = self.s.expect_name().text
                node = A.FieldExpr(node, name, arrow=(token.text == "->"),
                                   line=token.line)
            elif token.is_op("++", "--"):
                self.s.next()
                node = A.IncDecExpr(token.text, node, postfix=True,
                                    line=token.line)
            else:
                return node

    def _primary(self) -> A.Expr:
        token = self.s.next()
        if token.kind == "num":
            body = token.text.rstrip("uUlL")
            suffix = token.text[len(body):].lower()
            return A.IntLit(int(body, 0), unsigned="u" in suffix,
                            long_="l" in suffix, line=token.line)
        if token.kind == "fnum":
            return A.FloatLit(float(token.text.rstrip("fF")), line=token.line)
        if token.kind == "char":
            from repro.core.lexer import unescape
            return A.CharLit(ord(unescape(token.text[1:-1])) & 0xFF,
                             line=token.line)
        if token.kind == "string":
            from repro.core.lexer import unescape
            raw = unescape(token.text[1:-1]).encode("latin-1")
            # Adjacent string literals concatenate.
            while self.s.peek().kind == "string":
                extra = self.s.next()
                raw += unescape(extra.text[1:-1]).encode("latin-1")
            return A.StrLit(raw, line=token.line)
        if token.kind == "name" and token.text not in C_KEYWORDS:
            return A.Ident(token.text, line=token.line)
        if token.is_op("("):
            expr = self._expression()
            self.s.expect(")")
            return expr
        raise MiniCSyntaxError(
            f"expected expression, found {token.text!r}", token.line)


def _fold_const(expr: A.Expr, env: TypeEnv) -> int:
    """Constant-fold an integer expression (array sizes, case labels)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.CharLit):
        return expr.value
    if isinstance(expr, A.Ident):
        if expr.name in env.enum_constants:
            return env.enum_constants[expr.name][0]
        raise MiniCSyntaxError(f"not a constant: {expr.name}", expr.line)
    if isinstance(expr, A.UnaryExpr):
        value = _fold_const(expr.operand, env)
        return {"-": -value, "+": value, "~": ~value, "!": int(not value)}[expr.op]
    if isinstance(expr, A.BinExpr):
        x = _fold_const(expr.left, env)
        y = _fold_const(expr.right, env)
        ops = {
            "+": x + y, "-": x - y, "*": x * y,
            "/": int(x / y) if y else 0, "%": x - int(x / y) * y if y else 0,
            "<<": x << y, ">>": x >> y, "&": x & y, "|": x | y, "^": x ^ y,
            "==": int(x == y), "!=": int(x != y), "<": int(x < y),
            ">": int(x > y), "<=": int(x <= y), ">=": int(x >= y),
        }
        return ops[expr.op]
    if isinstance(expr, A.SizeofExpr) and expr.ctype is not None:
        return expr.ctype.size
    raise MiniCSyntaxError("expected constant expression", expr.line)


def parse_program(source: str,
                  env: Optional[TypeEnv] = None) -> tuple[A.Program, TypeEnv]:
    """Parse C source; returns the program and its type environment."""
    parser = CParser(source, env)
    program = parser.parse_program()
    return program, parser.env
