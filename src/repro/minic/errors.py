"""Mini-C error types."""

from __future__ import annotations

from typing import Optional


class MiniCError(Exception):
    """Base class for mini-C compile/runtime errors."""


class MiniCSyntaxError(MiniCError):
    """Lexical or grammatical error, with line information."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MiniCTypeError(MiniCError):
    """Semantic error found while resolving declarations/expressions."""


class MiniCRuntimeError(MiniCError):
    """Error raised while executing a mini-C program."""
