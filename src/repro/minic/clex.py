"""C tokenizer for mini-C.

Distinct from the DUEL lexer: C has no ``..``/``-->``/``[[`` tokens (a
C ``a-->b`` is ``a-- > b``), supports ``/* */`` and ``//`` comments,
and tracks line numbers for diagnostics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.minic.errors import MiniCSyntaxError

C_KEYWORDS = frozenset(
    "auto break case char const continue default do double else enum "
    "extern float for goto if int long register return short signed "
    "sizeof static struct switch typedef union unsigned void volatile "
    "while _Bool".split()
)

_TOKEN_RE = re.compile(r"""
    (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
  | (?P<comment>//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/)
  | (?P<fnum>(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?)
  | (?P<num>0[xX][0-9a-fA-F]+[uUlL]*|\d+[uUlL]*)
  | (?P<char>'(?:\\.|[^'\\])+')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<=|>>=|\.\.\.|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^!~<>=?:;,.(){}\[\]]=?)
""", re.VERBOSE)

# Multi-char assignment ops the op-group can mis-split ("*=" is fine,
# but "(=" must never match): restrict trailing "=" to operators where
# it is legal.
_VALID_OPS = frozenset(
    "<<= >>= ... -> ++ -- << >> <= >= == != && || "
    "+ - * / % & | ^ ! ~ < > = ? : ; , . ( ) { } [ ] "
    "+= -= *= /= %= &= |= ^=".split()
)


@dataclass(frozen=True)
class CToken:
    kind: str
    text: str
    line: int

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def __repr__(self) -> str:  # pragma: no cover
        return f"CToken({self.kind},{self.text!r},l{self.line})"


def tokenize_c(source: str) -> list[CToken]:
    """Tokenise C source into tokens plus a trailing EOF."""
    tokens: list[CToken] = []
    line = 1
    pos = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise MiniCSyntaxError(f"bad character {source[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        if kind == "nl":
            line += 1
            continue
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "op" and text not in _VALID_OPS:
            # e.g. "(=": split the spurious "=" back off.
            tokens.append(CToken("op", text[:-1], line))
            tokens.append(CToken("op", "=", line))
            continue
        tokens.append(CToken(kind, text, line))
    tokens.append(CToken("eof", "", line))
    return tokens


class CTokenStream:
    """Cursor with single-token pushback over C tokens."""

    def __init__(self, source: str):
        self.tokens = tokenize_c(source)
        self.i = 0

    def peek(self, ahead: int = 0) -> CToken:
        index = min(self.i + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> CToken:
        token = self.peek()
        if token.kind != "eof":
            self.i += 1
        return token

    def accept(self, *ops: str):
        if self.peek().is_op(*ops):
            return self.next()
        return None

    def accept_name(self, *names: str):
        token = self.peek()
        if token.kind == "name" and token.text in names:
            return self.next()
        return None

    def expect(self, op: str) -> CToken:
        token = self.next()
        if not token.is_op(op):
            raise MiniCSyntaxError(
                f"expected {op!r}, found {token.text or 'end of file'!r}",
                token.line)
        return token

    def expect_name(self) -> CToken:
        token = self.next()
        if token.kind != "name" or token.text in C_KEYWORDS:
            raise MiniCSyntaxError(
                f"expected identifier, found {token.text!r}", token.line)
        return token

    @property
    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    def error(self, message: str) -> MiniCSyntaxError:
        return MiniCSyntaxError(message, self.peek().line)
