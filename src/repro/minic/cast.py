"""AST for mini-C programs: external declarations, statements, expressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.ctype.types import CType


# ============================ expressions ==============================
class Expr:
    """Base class of C expressions."""

    line: int = 0


@dataclass
class IntLit(Expr):
    value: int
    unsigned: bool = False
    long_: bool = False
    line: int = 0


@dataclass
class FloatLit(Expr):
    value: float
    line: int = 0


@dataclass
class CharLit(Expr):
    value: int
    line: int = 0


@dataclass
class StrLit(Expr):
    value: bytes
    line: int = 0


@dataclass
class Ident(Expr):
    name: str
    line: int = 0


@dataclass
class UnaryExpr(Expr):
    op: str  # - + ! ~ * &
    operand: Expr
    line: int = 0


@dataclass
class IncDecExpr(Expr):
    op: str  # ++ --
    operand: Expr
    postfix: bool = False
    line: int = 0


@dataclass
class BinExpr(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class LogicalExpr(Expr):
    op: str  # && ||
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class CondExpr(Expr):
    cond: Expr
    then: Expr
    els: Expr
    line: int = 0


@dataclass
class AssignExpr(Expr):
    op: str  # = += -= ...
    target: Expr
    value: Expr
    line: int = 0


@dataclass
class CommaExpr(Expr):
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class IndexExpr(Expr):
    base: Expr
    index: Expr
    line: int = 0


@dataclass
class FieldExpr(Expr):
    base: Expr
    name: str
    arrow: bool
    line: int = 0


@dataclass
class CallExpr(Expr):
    func: Expr
    args: tuple[Expr, ...]
    line: int = 0


@dataclass
class CastExpr(Expr):
    ctype: CType
    operand: Expr
    line: int = 0


@dataclass
class SizeofExpr(Expr):
    ctype: Optional[CType] = None
    operand: Optional[Expr] = None
    line: int = 0


# ============================ statements ===============================
class Stmt:
    """Base class of C statements."""

    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]  # None = empty statement ";"
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    """Local declarations: one (name, type, initializer) per declarator."""

    decls: tuple[tuple[str, CType, Optional["Initializer"]], ...]
    line: int = 0


@dataclass
class Block(Stmt):
    body: tuple[Stmt, ...]
    line: int = 0


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt] = None
    line: int = 0


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt
    line: int = 0


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt
    cond: Expr
    line: int = 0


@dataclass
class ForStmt(Stmt):
    init: Optional[Union[Expr, "DeclStmt"]]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    line: int = 0


@dataclass
class SwitchStmt(Stmt):
    value: Expr
    #: (case_value_or_None_for_default, statements)
    cases: tuple[tuple[Optional[int], tuple[Stmt, ...]], ...]
    line: int = 0


@dataclass
class BreakStmt(Stmt):
    line: int = 0


@dataclass
class ContinueStmt(Stmt):
    line: int = 0


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None
    line: int = 0


# ========================= initializers / top level =======================
@dataclass
class Initializer:
    """Either a single expression or a brace list (possibly nested)."""

    expr: Optional[Expr] = None
    items: Optional[tuple["Initializer", ...]] = None

    @property
    def is_list(self) -> bool:
        return self.items is not None


@dataclass
class VarDef:
    name: str
    ctype: CType
    init: Optional[Initializer] = None
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ctype: CType  # FunctionType
    param_names: tuple[str, ...]
    body: Block
    line: int = 0


@dataclass
class Program:
    """A parsed translation unit."""

    variables: tuple[VarDef, ...]
    functions: tuple[FuncDef, ...] = field(default_factory=tuple)
