"""Mini-C: a compiler/interpreter for a useful C subset.

Runs target programs *inside the simulated inferior*
(:class:`~repro.target.program.TargetProgram`): globals live in the
data segment, locals in stack frames, heap objects come from the
simulated malloc.  After a program runs, its data structures sit in
target memory exactly where gdb would see them — which is where DUEL
explores them.

The same interpreter doubles as the paper's baseline: the C loops a
programmer would type at the debugger instead of a DUEL one-liner
(:mod:`repro.baseline`).

Supported subset: all C expression operators, int/char/long/double &
friends, pointers, arrays, structs/unions/enums/typedefs, functions
with recursion, if/while/for/do/switch/break/continue/return, string
literals, malloc/printf via :mod:`repro.target.stdlib`.
"""

from repro.minic.errors import MiniCError, MiniCSyntaxError, MiniCRuntimeError
from repro.minic.parser import parse_program
from repro.minic.interp import Interpreter
from repro.minic.runner import load_program, run_program

__all__ = [
    "MiniCError",
    "MiniCSyntaxError",
    "MiniCRuntimeError",
    "parse_program",
    "Interpreter",
    "load_program",
    "run_program",
]
