"""Conciseness metrics and matched execution harnesses.

The paper argues DUEL queries are dramatically shorter than the C a
programmer would type at the debugger; :func:`conciseness` quantifies
that (characters, tokens, AST nodes for the DUEL side), and
:func:`run_duel` / :func:`run_c` execute both formulations against the
same simulated inferior for the timing benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lexer import tokenize
from repro.core.nodes import node_count
from repro.core.parser import parse
from repro.core.session import DuelSession
from repro.minic.clex import tokenize_c
from repro.minic.interp import Interpreter
from repro.target.program import TargetProgram


@dataclass(frozen=True)
class Conciseness:
    """Size of one query formulation."""

    chars: int
    tokens: int
    ast_nodes: int


def _squeeze(text: str) -> str:
    """Collapse whitespace runs so formatting doesn't dominate counts."""
    return " ".join(text.split())


def conciseness(query) -> dict[str, Conciseness]:
    """Character/token counts for both sides of a PairedQuery."""
    duel_text = _squeeze(query.duel)
    c_text = _squeeze(query.c_source)
    duel_tokens = len(tokenize(query.duel)) - 1  # drop EOF
    c_tokens = len(tokenize_c(query.c_source)) - 1
    duel_nodes = node_count(parse(query.duel))
    return {
        "duel": Conciseness(len(duel_text), duel_tokens, duel_nodes),
        "c": Conciseness(len(c_text), c_tokens, 0),
    }


def run_duel(session: DuelSession, query) -> list:
    """Execute the DUEL side; returns the produced raw values."""
    return session.eval_values(query.duel)


def run_c(interp: Interpreter, query) -> list[str]:
    """Execute the C side; returns the lines it printed.

    The query's C source is loaded once (idempotently, keyed by the
    query) and its ``query()`` entry point invoked.
    """
    loaded = getattr(interp, "_loaded_queries", None)
    if loaded is None:
        loaded = set()
        interp._loaded_queries = loaded
    if query.key not in loaded:
        interp.load_source(query.c_source)
        loaded.add(query.key)
    before = len(interp.program.output)
    interp.call("query")
    return "".join(interp.program.output[before:]).splitlines()


def expressiveness_table(queries=None) -> list[dict]:
    """The P4 conciseness table: one row per paper query."""
    from repro.baseline.queries import PAPER_QUERIES
    rows = []
    for query in (queries or PAPER_QUERIES.values()):
        sizes = conciseness(query)
        rows.append({
            "query": query.key,
            "duel_chars": sizes["duel"].chars,
            "duel_tokens": sizes["duel"].tokens,
            "c_chars": sizes["c"].chars,
            "c_tokens": sizes["c"].tokens,
            "char_ratio": round(sizes["c"].chars / sizes["duel"].chars, 1),
            "token_ratio": round(sizes["c"].tokens / sizes["duel"].tokens, 1),
        })
    return rows


def fresh_pair(workload: str):
    """(session, interp) over one shared inferior carrying ``workload``."""
    from repro.bench.workloads import build_workload
    from repro.core.session import DuelSession as _Session
    from repro.target.interface import SimulatorBackend

    program = build_workload(workload)
    session = _Session(SimulatorBackend(program))
    interp = Interpreter(program)
    return session, interp

