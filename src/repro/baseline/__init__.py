"""The paper's comparison axis: DUEL one-liners vs debugger C code.

"Duel allows many state exploration queries to be expressed concisely,
often as one-liners without additional variables or control
constructs" — the paper's evaluation is precisely this comparison.
:mod:`repro.baseline.queries` pairs each paper query with the C the
programmer would otherwise type; :mod:`repro.baseline.metrics`
quantifies conciseness (characters, tokens, AST nodes) and provides
matched execution harnesses for the timing benchmarks (P4).
"""

from repro.baseline.queries import PAPER_QUERIES, PairedQuery
from repro.baseline.metrics import conciseness, run_duel, run_c

__all__ = ["PAPER_QUERIES", "PairedQuery", "conciseness",
           "run_duel", "run_c"]
