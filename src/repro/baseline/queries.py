"""Paired DUEL / C formulations of the paper's queries.

Each :class:`PairedQuery` holds the DUEL one-liner from the paper and
the C function a programmer would write instead (the paper's
Introduction shows exactly this for the duplicate-list query, bug
included).  The C side runs in the mini-C interpreter against the same
simulated inferior, so results and timings are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PairedQuery:
    """One query in both formulations."""

    key: str
    description: str
    duel: str
    #: C source defining ``void query(void)`` that prints its findings.
    c_source: str
    #: Workload the query expects (see repro.bench.workloads).
    workload: str


#: The Introduction's query: "does list L contain two identical
#: elements in its value fields?"  The paper's C version contains a
#: bug (q starts at p, so every element matches itself); the fixed
#: version is what a careful programmer writes.
LIST_DUP_DUEL = "L-->next->(value ==? next-->next->value)"

LIST_DUP_C = r"""
void query(void) {
    struct node *p, *q;
    for (p = L; p; p = p->next)
        for (q = p->next; q; q = q->next)
            if (p->value == q->value)
                printf("%x %x contain %d\n", p, q, p->value);
}
"""

#: The paper's buggy original (q = p), kept for the E6/narrative tests.
LIST_DUP_C_BUGGY = r"""
void query(void) {
    struct node *p, *q;
    for (p = L; p; p = p->next)
        for (q = p; q; q = q->next)
            if (p->value == q->value)
                printf("%x %x contain %d\n", p, q, p->value);
}
"""

#: §Syntax: search the symbol hash table for scope > 5.
HASH_SCOPE_DUEL = "(hash[..1024] !=? 0)->scope >? 5"

HASH_SCOPE_C = r"""
void query(void) {
    int i;
    for (i = 0; i < 1024; i++)
        if (hash[i] != 0)
            if (hash[i]->scope > 5)
                printf("hash[%d]->scope = %d\n", i, hash[i]->scope);
}
"""

#: Positive elements of an array (the abstract's example).
ARRAY_POSITIVE_DUEL = "x[..100] >? 0"

ARRAY_POSITIVE_C = r"""
void query(void) {
    int i;
    for (i = 0; i < 100; i++)
        if (x[i] > 0)
            printf("x[%d] = %d\n", i, x[i]);
}
"""

#: Count the nodes of a binary tree ("how many nodes are in tree?").
TREE_COUNT_DUEL = "#/(root-->(left,right))"

TREE_COUNT_C = r"""
int count(struct tree *t) {
    if (t == 0) return 0;
    return 1 + count(t->left) + count(t->right);
}
void query(void) {
    printf("%d\n", count(root));
}
"""

#: Verify each hash chain is sorted by decreasing scope.
HASH_SORTED_DUEL = ("hash[..1024]-->next-> if (next) scope <? next->scope")

HASH_SORTED_C = r"""
void query(void) {
    int i;
    struct symbol *p;
    for (i = 0; i < 1024; i++)
        for (p = hash[i]; p; p = p->next)
            if (p->next && p->scope < p->next->scope)
                printf("bucket %d violates at scope %d\n", i, p->scope);
}
"""

#: Clear every list head's scope field (§Syntax side-effect example).
HASH_CLEAR_DUEL = "hash[0..1023]->scope = 0 ;"

HASH_CLEAR_C = r"""
void query(void) {
    int i;
    for (i = 0; i < 1024; i++)
        if (hash[i])
            hash[i]->scope = 0;
}
"""

PAPER_QUERIES: dict[str, PairedQuery] = {
    q.key: q for q in [
        PairedQuery(
            key="list_dup",
            description="Introduction: does list L contain two identical "
                        "elements in its value fields?",
            duel=LIST_DUP_DUEL, c_source=LIST_DUP_C, workload="dup_list"),
        PairedQuery(
            key="hash_scope",
            description="Symbols at bucket heads with scope > 5",
            duel=HASH_SCOPE_DUEL, c_source=HASH_SCOPE_C, workload="hash"),
        PairedQuery(
            key="array_positive",
            description="Which elements of x[100] are positive?",
            duel=ARRAY_POSITIVE_DUEL, c_source=ARRAY_POSITIVE_C,
            workload="array100"),
        PairedQuery(
            key="tree_count",
            description="How many nodes are in tree?",
            duel=TREE_COUNT_DUEL, c_source=TREE_COUNT_C, workload="tree"),
        PairedQuery(
            key="hash_sorted",
            description="Are all hash chains sorted by decreasing scope?",
            duel=HASH_SORTED_DUEL, c_source=HASH_SORTED_C, workload="hash"),
        PairedQuery(
            key="hash_clear",
            description="Clear the scope field of every bucket head",
            duel=HASH_CLEAR_DUEL, c_source=HASH_CLEAR_C, workload="hash"),
    ]
}
