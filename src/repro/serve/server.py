"""The concurrent DUEL query server: ``duel-serve``.

A network-facing front end over everything PRs 1–4 built: each
accepted query runs under its client's resource governor (with the
:class:`~repro.core.governor.CancelToken` reachable from ``cancel``
frames and tripped on disconnect), is audited by the shared
:class:`~repro.obs.qlog.QueryLog`, folded into the process
:class:`~repro.obs.metrics.MetricsRegistry` (scrapeable via
``--metrics-port``), and captured by the shared
:class:`~repro.obs.recorder.FlightRecorder`.  The target program is
shared by every client through the snapshot-isolating
:class:`~repro.serve.sessions.SessionManager`.

Concurrency model — three kinds of threads:

* the **acceptor** (``ThreadingTCPServer.serve_forever`` in a daemon
  thread) accepts connections;
* one **connection thread** per client (the ``ThreadingTCPServer``
  handler) reads frames and answers control operations inline, so a
  ``cancel`` or ``stats`` is handled even while the client's query is
  being driven elsewhere;
* a bounded pool of **query workers** drains one shared, bounded
  queue of admitted ``duel`` requests and streams results back.

Admission control is explicit, never buffering: a ``duel`` frame is
rejected with ``rejected: busy`` when the client already has
``per_client`` queries in flight, and with ``rejected: overloaded``
when the shared queue is full — the client finds out immediately
instead of hanging.  ``max_clients`` bounds concurrent connections
the same way (``error`` + hangup on the over-limit connect).

Shutdown drains: :meth:`DuelServer.stop` stops the acceptor, lets the
workers finish every admitted query (up to ``drain_timeout``, after
which remaining queries' cancel tokens are tripped), sends each
connected client an unsolicited ``bye`` and closes the sockets.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import struct
import threading
from typing import Optional

from repro.serve import protocol
from repro.serve.sessions import ClientSession, SessionManager

#: A queue sentinel telling one worker to exit.
_STOP = object()

#: Socket send timeout, seconds.  A client that stops reading while
#: its query streams would otherwise block the worker in ``write``
#: forever (the governor only runs while the query makes progress, so
#: not even a deadline rescues a worker stuck in a syscall).  After
#: this long the write fails, the connection is declared dead and the
#: query's token is tripped — a slow consumer costs one worker at
#: most ``SEND_TIMEOUT`` seconds, never the whole pool.
SEND_TIMEOUT = 30.0


class _Pending:
    """One admitted ``duel`` request, from queue to terminal frame.

    The cancellation handshake lives here.  ``cancel()`` may arrive
    at any point relative to the worker picking the request up;
    ``mark_started`` / the ``on_begin`` recheck and the ``lock``
    guarantee a cancel is never lost: before the drive starts the
    request is dropped outright, after it the session's live token is
    tripped (``begin_query`` clears the token, so the recheck runs
    *after* that clear, closing the race).
    """

    __slots__ = ("conn", "client", "request_id", "text", "lock",
                 "cancelled", "started", "done")

    def __init__(self, conn: "_Connection", client: ClientSession,
                 request_id: int, text: str):
        self.conn = conn
        self.client = client
        self.request_id = request_id
        self.text = text
        self.lock = threading.Lock()
        self.cancelled = False
        self.started = False
        self.done = False

    def cancel(self, reason: str = "client cancel") -> None:
        with self.lock:
            self.cancelled = True
            if self.started and not self.done:
                self.client.token.trip(reason)

    def mark_started(self) -> bool:
        """Claim the request for driving; False when already cancelled."""
        with self.lock:
            if self.cancelled:
                return False
            self.started = True
            return True

    def recheck(self) -> None:
        """``on_begin`` hook: re-trip a cancel that raced query start."""
        with self.lock:
            if self.cancelled:
                self.client.token.trip("client cancel")


class _Connection:
    """Wire state of one connected client (shared with the workers)."""

    def __init__(self, client: ClientSession, wfile, server: "DuelServer"):
        self.client = client
        self._wfile = wfile
        self._server = server
        self._write_lock = threading.Lock()
        self.pending: dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self.alive = True
        #: Frames this connection failed to deliver (client vanished).
        self.dropped_frames = 0

    # -- frame delivery ----------------------------------------------------
    def send(self, frame: dict) -> bool:
        """Write one frame; False (never an exception) on a dead peer."""
        data = protocol.encode(frame)
        with self._write_lock:
            if not self.alive:
                self.dropped_frames += 1
                return False
            try:
                self._wfile.write(data)
                self._wfile.flush()
                return True
            except (OSError, ValueError):
                self.alive = False
                self.dropped_frames += 1
                return False

    # -- pending-query tracking -------------------------------------------
    def add_pending(self, pending: _Pending) -> None:
        with self._pending_lock:
            self.pending[pending.request_id] = pending
            self.client.inflight += 1

    def finish_pending(self, pending: _Pending) -> None:
        with pending.lock:
            pending.done = True
        with self._pending_lock:
            self.pending.pop(pending.request_id, None)
            self.client.inflight -= 1

    def find_pending(self, request_id: int) -> Optional[_Pending]:
        with self._pending_lock:
            return self.pending.get(request_id)

    def cancel_all(self, reason: str) -> None:
        with self._pending_lock:
            targets = list(self.pending.values())
        for pending in targets:
            pending.cancel(reason)


class DuelServer:
    """The embeddable query service (the CLI wraps this).

    Parameters map one-to-one onto the ``duel-serve`` flags:
    ``workers`` query threads drain a queue of at most ``queue_depth``
    admitted requests; ``per_client`` caps one client's in-flight
    queries; ``max_clients`` caps concurrent connections.  ``qlog``,
    ``recorder`` and ``metrics`` are shared across every client
    session — the thread-safe variants of those subsystems exist for
    exactly this.
    """

    def __init__(self, program, *, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, queue_depth: int = 16,
                 max_clients: int = 32, per_client: int = 1,
                 session_kwargs: Optional[dict] = None,
                 metrics=None, qlog=None, recorder=None,
                 drain_timeout: float = 10.0):
        if workers <= 0:
            raise ValueError("need at least one worker")
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if per_client <= 0:
            raise ValueError("per-client cap must be positive")
        self.sessions = SessionManager(program,
                                       session_kwargs=session_kwargs,
                                       metrics=metrics, qlog=qlog,
                                       recorder=recorder)
        self.metrics = metrics
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_depth = queue_depth
        self.max_clients = max_clients
        self.per_client = per_client
        self.drain_timeout = drain_timeout
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._worker_threads: list[threading.Thread] = []
        self._tcp: Optional[socketserver.ThreadingTCPServer] = None
        self._acceptor: Optional[threading.Thread] = None
        self._conns: set[_Connection] = set()
        self._conns_lock = threading.Lock()
        self._client_seq = 0
        self._stopping = False
        #: Lifetime counters (also mirrored into ``metrics``).
        self.served = 0
        self.rejected = 0
        self.protocol_errors = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> int:
        """Bind, spin up workers and the acceptor; returns the port."""
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                server._handle_connection(self)

        class TCP(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = TCP((self.host, self.port), Handler)
        self.port = self._tcp.server_address[1]
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"duel-worker-{index}",
                                      daemon=True)
            thread.start()
            self._worker_threads.append(thread)
        self._acceptor = threading.Thread(target=self._tcp.serve_forever,
                                          name="duel-acceptor", daemon=True)
        self._acceptor.start()
        return self.port

    def stop(self) -> None:
        """Graceful drain: finish admitted queries, then hang up."""
        if self._tcp is None:
            return
        self._stopping = True
        self._tcp.shutdown()          # stop accepting new connections
        for _ in self._worker_threads:
            self._queue.put(_STOP)    # after all admitted work
        deadline = self.drain_timeout
        for thread in self._worker_threads:
            thread.join(timeout=deadline)
            if thread.is_alive():
                # Past the drain budget: trip every in-flight token so
                # the stuck queries come back as graceful cancellations.
                with self._conns_lock:
                    conns = list(self._conns)
                for conn in conns:
                    conn.cancel_all("server shutdown")
                thread.join(timeout=deadline)
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.send({"ev": "bye", "reason": "server shutdown"})
            conn.alive = False
        self._tcp.server_close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5)
        self._tcp = None
        self._worker_threads = []

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def inflight(self) -> int:
        """Admitted-but-unfinished queries across all clients."""
        with self._conns_lock:
            conns = list(self._conns)
        return sum(len(conn.pending) for conn in conns)

    def queued(self) -> int:
        return self._queue.qsize()

    def connections(self) -> int:
        with self._conns_lock:
            return len(self._conns)

    # -- metrics helpers ---------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_sync(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve_clients").set(self.connections())
            self.metrics.gauge("serve_inflight").set(self.inflight())
            self.metrics.gauge("serve_queued").set(self.queued())

    # -- connection handling ----------------------------------------------
    def _handle_connection(self, handler) -> None:
        try:
            handler.connection.settimeout(None)
            handler.connection.setsockopt(socket.IPPROTO_TCP,
                                          socket.TCP_NODELAY, 1)
            # Bound sends only (SO_SNDTIMEO, not settimeout: reads on
            # this socket must still block indefinitely for idle
            # clients).  See SEND_TIMEOUT.
            seconds = int(SEND_TIMEOUT)
            micros = int((SEND_TIMEOUT - seconds) * 1e6)
            handler.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDTIMEO,
                struct.pack("ll", seconds, micros))
        except (OSError, AttributeError):
            pass
        if self._stopping or self.connections() >= self.max_clients:
            try:
                handler.wfile.write(protocol.encode(
                    {"ev": "error",
                     "error": "server full" if not self._stopping
                     else "server shutting down"}))
                handler.wfile.flush()
            except OSError:
                pass
            self._count("serve_refused_connections_total")
            return
        # First frame must be a well-formed hello.
        try:
            frames = protocol.read_frames(handler.rfile)
            first = next(frames, None)
            if first is None:
                return
            if protocol.validate_request(first) != "hello":
                raise protocol.ProtocolError("first frame must be 'hello'")
            if first["version"] != protocol.PROTOCOL_VERSION:
                raise protocol.ProtocolError(
                    f"unsupported protocol version {first['version']} "
                    f"(server speaks {protocol.PROTOCOL_VERSION})")
        except protocol.ProtocolError as error:
            self.protocol_errors += 1
            self._count("serve_protocol_errors_total")
            try:
                handler.wfile.write(protocol.encode(
                    {"ev": "error", "error": str(error)}))
                handler.wfile.flush()
            except OSError:
                pass
            return
        with self._conns_lock:
            self._client_seq += 1
            seq = self._client_seq
        name = first.get("client") or f"client-{seq}"
        client_id = f"{name}#{seq}"
        client = self.sessions.open(client_id)
        conn = _Connection(client, handler.wfile, self)
        with self._conns_lock:
            self._conns.add(conn)
        self._count("serve_connections_total")
        self._gauge_sync()
        conn.send(protocol.welcome(
            client_id, version=protocol.PROTOCOL_VERSION,
            limits=dict(client.session.governor.limits),
            per_client=self.per_client))
        try:
            self._serve_frames(conn, frames)
        except protocol.ProtocolError as error:
            self.protocol_errors += 1
            self._count("serve_protocol_errors_total")
            conn.send({"ev": "error", "error": str(error)})
        except OSError:
            pass
        finally:
            conn.alive = False
            conn.cancel_all("client disconnected")
            with self._conns_lock:
                self._conns.discard(conn)
            # The session object dies with the connection; its aliases
            # and governor state are unreachable afterwards, which is
            # the isolation contract.
            self.sessions.close(client_id)
            self._gauge_sync()

    def _serve_frames(self, conn: _Connection, frames) -> None:
        """The connection thread's read loop (control ops run inline)."""
        for frame in frames:
            op = protocol.validate_request(frame)
            if op == "bye":
                conn.send({"ev": "bye"})
                return
            if op == "hello":
                conn.send({"ev": "error",
                           "error": "already said hello"})
                continue
            if op == "duel":
                self._admit(conn, frame)
            elif op == "cancel":
                self._op_cancel(conn, frame)
            elif op == "alias":
                self._op_alias(conn, frame)
            elif op == "limits":
                self._op_limits(conn, frame)
            elif op == "stats":
                self._op_stats(conn, frame)

    # -- admission control -------------------------------------------------
    def _admit(self, conn: _Connection, frame: dict) -> None:
        request_id = frame["id"]
        if self._stopping:
            self.rejected += 1
            self._count("serve_rejected_total")
            conn.send(protocol.rejected(request_id, "shutting down"))
            return
        if conn.client.inflight >= self.per_client:
            self.rejected += 1
            self._count("serve_rejected_total")
            conn.send(protocol.rejected(
                request_id, "busy",
                detail=f"client already has {conn.client.inflight} "
                       f"quer{'y' if conn.client.inflight == 1 else 'ies'} "
                       f"in flight (cap {self.per_client})"))
            return
        pending = _Pending(conn, conn.client, request_id, frame["text"])
        conn.add_pending(pending)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            conn.finish_pending(pending)
            self.rejected += 1
            self._count("serve_rejected_total")
            conn.send(protocol.rejected(
                request_id, "overloaded",
                detail=f"query queue full ({self.queue_depth} deep)"))
            return
        self._gauge_sync()

    # -- control operations ------------------------------------------------
    def _op_cancel(self, conn: _Connection, frame: dict) -> None:
        pending = conn.find_pending(frame["target"])
        if pending is None:
            conn.send({"ev": "cancel", "id": frame["id"],
                       "target": frame["target"], "found": False})
            return
        pending.cancel()
        self._count("serve_cancels_total")
        conn.send({"ev": "cancel", "id": frame["id"],
                   "target": frame["target"], "found": True})

    def _op_alias(self, conn: _Connection, frame: dict) -> None:
        client = conn.client
        if not client.lock.acquire(timeout=1.0):
            conn.send(protocol.rejected(frame["id"], "busy",
                                        detail="a query is running"))
            return
        try:
            session = client.session
            aliases = {name: session.formatter.format(value)
                       for name, value in session.aliases().items()}
        finally:
            client.lock.release()
        conn.send({"ev": "alias", "id": frame["id"], "aliases": aliases})

    def _op_limits(self, conn: _Connection, frame: dict) -> None:
        governor = conn.client.session.governor
        name = frame.get("name")
        if name is not None:
            # Setting limits is allowed mid-query on purpose: raising
            # a deadline to rescue a long query is the use case.
            try:
                governor.set_limit(name, frame.get("value"))
            except ValueError as error:
                conn.send({"ev": "error", "id": frame["id"],
                           "error": str(error)})
                return
        conn.send({"ev": "limits", "id": frame["id"],
                   "limits": dict(governor.limits),
                   "policies": dict(governor.policies)})

    def _op_stats(self, conn: _Connection, frame: dict) -> None:
        client = conn.client
        conn.send({"ev": "stats", "id": frame["id"],
                   "query": dict(client.session.last_query_stats),
                   "client": {"queries": client.queries,
                              "inflight": client.inflight},
                   "server": {"clients": self.connections(),
                              "inflight": self.inflight(),
                              "queued": self.queued(),
                              "served": self.served,
                              "rejected": self.rejected,
                              "protocol_errors": self.protocol_errors}})

    # -- query workers -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._drive(item)
            finally:
                self._queue.task_done()

    def _drive(self, pending: _Pending) -> None:
        conn = pending.conn
        if not pending.mark_started():
            conn.finish_pending(pending)
            conn.send(protocol.terminal(
                pending.request_id, "cancelled",
                {"values": 0,
                 "diagnostic": "(stopped: 0 values, interrupted)",
                 "kind": "cancel"}))
            return
        self.served += 1
        self._count("serve_queries_total")
        batch: list[str] = []
        batch_bytes = 0
        request_id = pending.request_id
        outcome_frame = None
        try:
            events = self.sessions.run(pending.client, pending.text,
                                       on_begin=pending.recheck)
            for kind, payload in events:
                if kind == "value":
                    batch.append(payload)
                    batch_bytes += len(payload)
                    if len(batch) >= protocol.CHUNK \
                            or batch_bytes >= protocol.CHUNK_BYTES:
                        if not conn.send(protocol.value_frame(
                                request_id, batch)):
                            # Peer is gone: stop driving promptly.
                            pending.cancel("client disconnected")
                        batch = []
                        batch_bytes = 0
                else:
                    outcome_frame = protocol.terminal(request_id, kind,
                                                      payload)
        except Exception as error:    # defensive: a drive bug must not
            outcome_frame = protocol.terminal(  # kill the worker
                request_id, "error",
                {"values": 0, "error": f"internal error: {error}",
                 "error_type": type(error).__name__})
            self._count("serve_internal_errors_total")
        finally:
            conn.finish_pending(pending)
            try:
                if batch:
                    conn.send(protocol.value_frame(request_id, batch))
                if outcome_frame is None:
                    outcome_frame = protocol.terminal(
                        request_id, "error",
                        {"values": 0, "error": "internal error: drive "
                         "ended without a terminal event"})
                conn.send(outcome_frame)
                self._count(
                    f"serve_outcome_{outcome_frame['ev']}_total")
            except Exception:         # a reply we cannot frame must
                self.protocol_errors += 1     # not kill the worker
                self._count("serve_protocol_errors_total")
            self._gauge_sync()


def run_server(ns, program, limit_kwargs: dict, out,
               ready=None, stop_event=None) -> int:
    """Boot a :class:`DuelServer` from parsed CLI flags and block.

    Reuses every unattended-observability flag the REPL grew in PRs
    2–4 — ``--query-log`` / ``--dump-dir`` / ``--metrics-port`` now
    aggregate *across clients* — and announces the bound endpoints on
    ``out`` (flushed line by line, so wrappers like
    ``scripts/serve_smoke.py`` can scrape the ports).  Blocks until
    SIGINT/SIGTERM (or ``stop_event``), then drains gracefully.
    ``ready`` (a ``threading.Event``) is set once serving, for
    embedders.
    """
    import signal

    from repro.obs.metrics import registry as process_registry

    metrics = process_registry()
    qlog = None
    if ns.query_log:
        from repro.obs.qlog import QueryLog
        try:
            qlog = QueryLog(ns.query_log)
        except OSError as error:
            out.write(f"error: {error}\n")
            return 1
    recorder = None
    if ns.dump_dir:
        import os

        from repro.obs.recorder import FlightRecorder
        try:
            os.makedirs(ns.dump_dir, exist_ok=True)
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            return 1
        recorder = FlightRecorder(dump_dir=ns.dump_dir)
    metrics_server = None
    if ns.metrics_port is not None:
        from repro.obs.exposition import MetricsServer
        metrics_server = MetricsServer(metrics, port=ns.metrics_port)
        try:
            mport = metrics_server.start()
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            return 1
        out.write(f"metrics: http://127.0.0.1:{mport}/metrics\n")
    session_kwargs = dict(limit_kwargs)
    session_kwargs["symbolic"] = not ns.no_symbolic
    session_kwargs["optimize"] = ns.optimize
    server = DuelServer(program, host=ns.host, port=ns.port,
                        workers=ns.workers, queue_depth=ns.queue_depth,
                        max_clients=ns.max_clients,
                        per_client=ns.per_client,
                        session_kwargs=session_kwargs,
                        metrics=metrics, qlog=qlog, recorder=recorder,
                        drain_timeout=ns.drain_timeout)
    try:
        port = server.start()
    except OSError as error:
        out.write(f"error: {error}\n")
        if qlog is not None:
            qlog.close()
        if metrics_server is not None:
            metrics_server.stop()
        return 1
    out.write(f"serving on {ns.host}:{port}\n")
    try:
        out.flush()
    except (AttributeError, OSError):
        pass
    stopper = stop_event if stop_event is not None else threading.Event()

    def request_stop(signum=None, frame=None):
        stopper.set()

    previous = {}
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except ValueError:            # not the main thread
            pass
    if ready is not None:
        ready.set()
    try:
        stopper.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        out.write("draining...\n")
        try:
            out.flush()
        except (AttributeError, OSError):
            pass
        server.stop()
        if metrics_server is not None:
            metrics_server.stop()
        if qlog is not None:
            qlog.close()
        out.write(f"served {server.served} queries "
                  f"({server.rejected} rejected)\n")
    return 0


def main(argv=None) -> int:
    """``duel-serve``: the standalone server CLI.

    Shares flags (and the target bootstrap) with ``python -m repro
    --serve``; this entry point just forces ``--serve`` on.
    """
    import sys
    from repro.cli import main as cli_main
    args = list(argv) if argv is not None else sys.argv[1:]
    return cli_main(["--serve", *args])


if __name__ == "__main__":  # pragma: no cover
    import sys
    raise SystemExit(main(sys.argv[1:]))
