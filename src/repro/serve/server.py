"""The concurrent DUEL query server: ``duel-serve``.

A network-facing front end over everything PRs 1–4 built: each
accepted query runs under its client's resource governor (with the
:class:`~repro.core.governor.CancelToken` reachable from ``cancel``
frames and tripped on disconnect), is audited by the shared
:class:`~repro.obs.qlog.QueryLog`, folded into the process
:class:`~repro.obs.metrics.MetricsRegistry` (scrapeable via
``--metrics-port``), and captured by the shared
:class:`~repro.obs.recorder.FlightRecorder`.  The target program is
shared by every client through the snapshot-isolating
:class:`~repro.serve.sessions.SessionManager`.

Concurrency model — four kinds of threads:

* the **acceptor** (``ThreadingTCPServer.serve_forever`` in a daemon
  thread) accepts connections;
* one **connection thread** per client (the ``ThreadingTCPServer``
  handler) reads frames and answers control operations inline, so a
  ``cancel`` or ``stats`` is handled even while the client's query is
  being driven elsewhere;
* a bounded pool of **query workers** drains one shared, bounded
  queue of admitted ``duel`` requests and streams results back;
* one **watchdog** thread owning every liveness decision: heartbeat
  pings and reaps, wall-clock hard-cancellation of queries that blow
  past their deadline, parked-session expiry, and health gauges.

Admission control is explicit, never buffering: a ``duel`` frame is
rejected with ``rejected: busy`` when the client already has
``per_client`` queries in flight, and with ``rejected: overloaded``
when the shared queue is full — the client finds out immediately
instead of hanging.  ``max_clients`` bounds concurrent connections
the same way (``error`` + hangup on the over-limit connect).

Fault tolerance (PR 6) is layered on without changing the admitted
happy path:

* **Heartbeats.**  The watchdog pings connections idle past
  ``heartbeat_interval``; *any* inbound frame counts as proof of
  life.  A connection silent for ``heartbeat_timeout`` with an
  unanswered ping is *reaped*: its socket is shut down, which
  unblocks the connection thread and runs the normal disconnect
  cleanup — nothing is leaked that a voluntary disconnect would not
  also release.
* **Parking and resume.**  An abnormal disconnect (reap, network
  fault — anything but a clean ``bye``) parks the session under its
  resume key for ``resume_ttl`` seconds; a reconnect presenting the
  key in ``hello`` re-attaches it, aliases and idempotency cache
  intact.
* **Watchdog hard-cancel.**  A query that ignores its cooperative
  deadline is first hard-cancelled — its token is tripped *and* a
  :class:`~repro.core.errors.DuelCancelled` is asynchronously raised
  into the worker (only while the drive loop is interruptible, never
  during cleanup).  If the worker is still wedged ``watchdog_grace``
  later it is declared lost: the session's leases are reclaimed
  (snapshot restored, RW lock released — crash-only cleanup), the
  session is poisoned, the client gets a ``cancelled`` terminal
  frame, and a replacement worker thread is started so the pool never
  shrinks.
* **Idempotency.**  ``duel`` frames may carry an ``idem`` token; the
  completed result is cached per session and a retried token is
  *replayed* (``replayed: true``), never re-executed — a retry after
  an ambiguous disconnect cannot run a side-effecting query twice.
* **Degraded mode.**  Target-fault terminal outcomes feed a
  :class:`~repro.serve.health.CircuitBreaker`; while it is open,
  side-effecting queries are refused with ``rejected: degraded`` and
  reads keep flowing.  ``/healthz`` (via the metrics server) and the
  ``serve_health`` gauge surface ok / degraded / draining.

Shutdown drains: :meth:`DuelServer.stop` flips health to draining,
stops the acceptor, lets the workers finish every admitted query (up
to ``drain_timeout``, after which remaining queries' cancel tokens
are tripped; :meth:`request_fast_drain` — a second SIGINT — trips
them immediately), sends each connected client an unsolicited ``bye``
and closes the sockets.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import struct
import threading
import time
from collections import deque
from typing import Optional

from repro.core.errors import DuelCancelled, DuelError
from repro.obs.reqtrace import RequestTrace, make_trace_id
from repro.serve import protocol
from repro.serve.health import CircuitBreaker, ServerHealth
from repro.serve.journal import StateStore, fold_sessions
from repro.serve.sessions import (IDEM_LINES_BYTES, ClientSession,
                                  SessionManager)
from repro.target import snapshot as target_snapshot
from repro.target.snapshot import Snapshot

#: A queue sentinel telling one worker to exit.
_STOP = object()

#: Socket send timeout, seconds.  A client that stops reading while
#: its query streams would otherwise block the worker in ``write``
#: forever (the governor only runs while the query makes progress, so
#: not even a deadline rescues a worker stuck in a syscall).  After
#: this long the write fails, the connection is declared dead and the
#: query's token is tripped — a slow consumer costs one worker at
#: most ``SEND_TIMEOUT`` seconds, never the whole pool.
SEND_TIMEOUT = 30.0

#: ``error_type`` values on ``faulted`` terminals that indicate a sick
#: *target* (and feed the circuit breaker) rather than a bad query.  A
#: user typo (``DuelNameError``) or a bad pointer in a query
#: (``DuelMemoryError``) must never degrade the service for everyone.
TARGET_FAULT_TYPES = frozenset({"DuelTargetError", "TargetMemoryFault"})

#: Watchdog deadline assumed for queries running with no
#: ``deadline_ms`` limit, seconds.
DEFAULT_WATCHDOG_DEADLINE = 60.0


def _async_raise(tid: int) -> bool:
    """Raise :class:`DuelCancelled` inside thread ``tid`` (best effort).

    The CPython-only escalation for a worker ignoring its cooperative
    token: the exception lands at the thread's next bytecode boundary,
    so a loop wedged in pure Python unwinds; a thread blocked in a C
    call does not (the caller escalates to reclaim after a grace
    period).  Returns False when the raise could not be delivered.
    """
    try:
        import ctypes
        set_async = ctypes.pythonapi.PyThreadState_SetAsyncExc
    except (ImportError, AttributeError):  # pragma: no cover - non-CPython
        return False
    res = set_async(ctypes.c_ulong(tid), ctypes.py_object(DuelCancelled))
    if res > 1:                            # pragma: no cover - defensive
        set_async(ctypes.c_ulong(tid), None)
        return False
    return res == 1


def _accesses_frame(frame: dict) -> dict:
    """Reshape a standard terminal frame into the ``accesses`` reply.

    The drive path builds the usual ``done``/``faulted``/... terminal
    (so health reporting, counters and observability see the real
    outcome), and only the frame actually sent is reshaped: the
    outcome moves into ``"outcome"``, the session's full access
    profile becomes ``"profile"``, and the advisor sweep rides along.
    """
    reply = {"ev": "accesses", "id": frame["id"],
             "outcome": frame["ev"], "values": frame.get("values", 0)}
    for key in ("kind", "diagnostic", "error", "error_type",
                "fingerprint", "trace", "advisor"):
        if key in frame:
            reply[key] = frame[key]
    if "access" in frame:
        reply["profile"] = frame["access"]
    return reply


class _Pending:
    """One admitted ``duel`` request, from queue to terminal frame.

    The cancellation handshake lives here.  ``cancel()`` may arrive
    at any point relative to the worker picking the request up;
    ``mark_started`` / the ``on_begin`` recheck and the ``lock``
    guarantee a cancel is never lost: before the drive starts the
    request is dropped outright, after it the session's live token is
    tripped (``begin_query`` clears the token, so the recheck runs
    *after* that clear, closing the race).

    The watchdog reads the timing fields (``started_at``,
    ``deadline_s``, ``hard_cancelled_at``) and the ``interruptible``
    flag — True exactly while the drive loop runs, so an async raise
    can never land inside cleanup code.  ``finish_pending`` is
    idempotent via ``done``: the driving worker and the watchdog can
    race to finish a query and exactly one of them sends the terminal
    frame.
    """

    __slots__ = ("conn", "client", "request_id", "text", "lock",
                 "cancelled", "started", "done", "idem", "writes",
                 "started_at", "deadline_s", "worker_tid",
                 "worker_thread", "interruptible", "hard_cancelled_at",
                 "idem_lines", "idem_bytes", "idem_clipped",
                 "trace_id", "sampled", "profile", "admitted_at",
                 "access")

    def __init__(self, conn: "_Connection", client: ClientSession,
                 request_id: int, text: str, idem: Optional[str] = None,
                 writes: Optional[bool] = None,
                 trace_id: Optional[str] = None, sampled: bool = False,
                 profile: bool = False, access: bool = False):
        self.conn = conn
        self.client = client
        self.request_id = request_id
        self.text = text
        #: The wire trace id echoed on every frame for this request.
        self.trace_id = trace_id if trace_id is not None \
            else make_trace_id()
        #: Head-sampling coin (decided at admission, 1-in-N).
        self.sampled = sampled
        #: Client asked for the span tree on the terminal frame.
        self.profile = profile
        #: The ``accesses`` wire op: force the memory-access tracer on,
        #: suppress value frames, answer with the locality profile.
        self.access = access
        #: Admission timestamp; ``started_at - admitted_at`` is the
        #: ``admission_queue`` span.
        self.admitted_at = time.monotonic()
        self.lock = threading.Lock()
        self.cancelled = False
        self.started = False
        self.done = False
        self.idem = idem
        #: True/False when admission classified the query (breaker
        #: open); None when classification was skipped (breaker
        #: closed — the hot path never pays the extra compile).
        self.writes = writes
        self.started_at: Optional[float] = None
        self.deadline_s: Optional[float] = None
        self.worker_tid: Optional[int] = None
        self.worker_thread: Optional[threading.Thread] = None
        self.interruptible = False
        self.hard_cancelled_at: Optional[float] = None
        self.idem_lines: list[str] = []
        self.idem_bytes = 0
        self.idem_clipped = False

    def cancel(self, reason: str = "client cancel") -> None:
        with self.lock:
            self.cancelled = True
            if self.started and not self.done:
                self.client.token.trip(reason)

    def mark_started(self) -> bool:
        """Claim the request for driving; False when already cancelled."""
        with self.lock:
            if self.cancelled:
                return False
            self.started = True
            self.started_at = time.monotonic()
            self.worker_tid = threading.get_ident()
            self.worker_thread = threading.current_thread()
            dms = self.client.session.governor.limits.get("deadline_ms")
            self.deadline_s = dms / 1000.0 if dms else None
            return True

    def recheck(self) -> None:
        """``on_begin`` hook: re-trip a cancel that raced query start."""
        with self.lock:
            if self.cancelled:
                self.client.token.trip("client cancel")

    def idem_note(self, line: str) -> None:
        """Record one output line for replay (bounded)."""
        if self.idem_clipped:
            return
        self.idem_bytes += len(line)
        if self.idem_bytes > IDEM_LINES_BYTES:
            self.idem_clipped = True
        else:
            self.idem_lines.append(line)


class _Connection:
    """Wire state of one connected client (shared with the workers)."""

    def __init__(self, client: ClientSession, wfile, server: "DuelServer",
                 sock=None):
        self.client = client
        self._wfile = wfile
        self._server = server
        self._sock = sock
        self._write_lock = threading.Lock()
        self.pending: dict[int, _Pending] = {}
        self._pending_lock = threading.Lock()
        self.alive = True
        #: Frames this connection failed to deliver (client vanished).
        self.dropped_frames = 0
        #: Liveness bookkeeping (watchdog heartbeats).
        self.last_recv = time.monotonic()
        self.ping_sent_at: Optional[float] = None
        self.ping_seq = 0
        self.reaped = False
        #: True once ``welcome`` was delivered (a session is only worth
        #: parking if its client ever learned the resume key).
        self.welcomed = False
        #: True when the client said ``bye`` (no parking either).
        self.clean_bye = False

    def touch(self) -> None:
        """Any inbound frame is proof of life."""
        self.last_recv = time.monotonic()

    # -- frame delivery ----------------------------------------------------
    def send(self, frame: dict) -> bool:
        """Write one frame; False (never an exception) on a dead peer."""
        data = protocol.encode(frame)
        with self._write_lock:
            if not self.alive:
                self.dropped_frames += 1
                return False
            try:
                self._wfile.write(data)
                self._wfile.flush()
                return True
            except (OSError, ValueError):
                self.alive = False
                self.dropped_frames += 1
                return False

    def close_transport(self) -> None:
        """Force the peer socket shut (watchdog reap).

        Shutting down — not closing — the socket makes the connection
        thread's blocking ``readline`` return EOF, so the one and only
        cleanup path (the handler's ``finally``) runs; the handler
        still owns the close.
        """
        self.alive = False
        if self._sock is None:
            return
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    # -- pending-query tracking -------------------------------------------
    def add_pending(self, pending: _Pending) -> None:
        with self._pending_lock:
            self.pending[pending.request_id] = pending
            self.client.inflight += 1

    def finish_pending(self, pending: _Pending) -> bool:
        """Retire ``pending``; True only for the first caller."""
        with pending.lock:
            if pending.done:
                return False
            pending.done = True
        with self._pending_lock:
            if self.pending.pop(pending.request_id, None) is not None:
                self.client.inflight -= 1
        return True

    def find_pending(self, request_id: int) -> Optional[_Pending]:
        with self._pending_lock:
            return self.pending.get(request_id)

    def pending_list(self) -> list[_Pending]:
        with self._pending_lock:
            return list(self.pending.values())

    def cancel_all(self, reason: str) -> None:
        for pending in self.pending_list():
            pending.cancel(reason)


class DuelServer:
    """The embeddable query service (the CLI wraps this).

    Parameters map one-to-one onto the ``duel-serve`` flags:
    ``workers`` query threads drain a queue of at most ``queue_depth``
    admitted requests; ``per_client`` caps one client's in-flight
    queries; ``max_clients`` caps concurrent connections.  ``qlog``,
    ``recorder`` and ``metrics`` are shared across every client
    session — the thread-safe variants of those subsystems exist for
    exactly this.

    Fault-tolerance knobs: ``heartbeat_interval`` / ``heartbeat_timeout``
    drive the ping/reap cycle (either <= 0 disables it);
    ``resume_ttl`` bounds how long an abnormally disconnected session
    stays resumable; ``watchdog_tick`` is the watchdog's cadence and
    ``watchdog_grace`` the window between the async raise and
    declaring a worker lost; ``health`` (or the ``breaker_*``
    shorthands) configures degraded mode.
    """

    def __init__(self, program, *, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, queue_depth: int = 16,
                 max_clients: int = 32, per_client: int = 1,
                 session_kwargs: Optional[dict] = None,
                 metrics=None, qlog=None, recorder=None,
                 statements=None, tracelog=None, accesslog=None,
                 slow_ms: Optional[float] = None,
                 drain_timeout: float = 10.0,
                 heartbeat_interval: float = 10.0,
                 heartbeat_timeout: float = 30.0,
                 resume_ttl: float = 60.0,
                 watchdog_tick: float = 0.25,
                 watchdog_grace: float = 2.0,
                 health: Optional[ServerHealth] = None,
                 breaker_threshold: int = 5,
                 breaker_window: float = 30.0,
                 breaker_cooldown: float = 10.0,
                 session_factory=None,
                 state_dir: Optional[str] = None,
                 journal_fsync: str = "interval:1.0",
                 checkpoint_interval: float = 30.0,
                 commit_writes: bool = False,
                 journal_sync_hook=None):
        if workers <= 0:
            raise ValueError("need at least one worker")
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if per_client <= 0:
            raise ValueError("per-client cap must be positive")
        #: The crash-only durability layer (None without --state-dir):
        #: a write-ahead journal plus periodic target checkpoints, so
        #: a restarted server with the same state dir resurrects every
        #: parked session and re-applies every committed write.
        self.store = StateStore(state_dir, fsync=journal_fsync,
                                sync_hook=journal_sync_hook) \
            if state_dir else None
        self.checkpoint_interval = checkpoint_interval
        self.commit_writes = commit_writes
        self.sessions = SessionManager(
            program, session_kwargs=session_kwargs,
            metrics=metrics, qlog=qlog, recorder=recorder,
            statements=statements,
            session_factory=session_factory,
            journal=self.store.journal if self.store else None,
            commit_writes=commit_writes,
            accesslog=accesslog)
        self.metrics = metrics
        self.qlog = qlog
        #: Fleet statement statistics (:class:`~repro.obs.statements.
        #: StatementStats`) — None keeps the single-predicate off path.
        self.statements = statements
        #: Request-trace exporter (:class:`~repro.obs.reqtrace.
        #: TraceLog`) — None disables span collection entirely.
        self.tracelog = tracelog
        #: Shared access-profile exporter (:class:`~repro.obs.access.
        #: AccessLog`) — None keeps the single-predicate off path; when
        #: set, every client session samples its coin and the
        #: ``accesses`` op's forced profiles are exported through it.
        self.accesslog = accesslog
        #: Slow-query threshold, milliseconds (None = off): a served
        #: request slower end-to-end gets a dedicated qlog
        #: ``slow_query`` event, a flight-recorder pin, a slot in
        #: :attr:`slow_queries`, and an unconditional trace export.
        self.slow_ms = slow_ms
        #: The newest slow queries (bounded), served by the ``health``
        #: op for the ops console's slow-query tail.
        self.slow_queries: deque = deque(maxlen=32)
        self.recorder = recorder
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_depth = queue_depth
        self.max_clients = max_clients
        self.per_client = per_client
        self.drain_timeout = drain_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.resume_ttl = resume_ttl
        self.watchdog_tick = watchdog_tick
        self.watchdog_grace = watchdog_grace
        if health is None:
            health = ServerHealth(CircuitBreaker(
                threshold=breaker_threshold, window=breaker_window,
                cooldown=breaker_cooldown))
        self.health = health
        self.health.detail = self.health_detail
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._worker_threads: list[threading.Thread] = []
        self._worker_seq = 0
        self._tcp: Optional[socketserver.ThreadingTCPServer] = None
        self._acceptor: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None
        self._checkpointer: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        self._fast = threading.Event()
        self._conns: set[_Connection] = set()
        self._conns_lock = threading.Lock()
        self._client_seq = 0
        self._stopping = False
        #: Lifetime counters (also mirrored into ``metrics``).
        self.served = 0
        self.rejected = 0
        self.protocol_errors = 0
        self.reaped = 0
        self.hard_cancels = 0
        self.workers_lost = 0
        self.checkpoints = 0
        self.recovered_sessions = 0
        self.replayed_writes = 0
        self.slow_query_count = 0
        #: ``accesses`` wire ops admitted (forced access profiles).
        self.accesses_served = 0
        self._watchdog_last_sweep: Optional[float] = None
        self._crashed = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> int:
        """Bind, spin up workers, watchdog and acceptor; returns the port."""
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                server._handle_connection(self)

        class TCP(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        if self.store is not None:
            # Recovery runs strictly before the first accept: by the
            # time a client can present a resume key, every surviving
            # session is already parked and every committed write
            # re-applied.
            self._recover()
        self._tcp = TCP((self.host, self.port), Handler)
        self.port = self._tcp.server_address[1]
        for _ in range(self.workers):
            self._spawn_worker()
        self._watchdog = threading.Thread(target=self._watchdog_loop,
                                          name="duel-watchdog", daemon=True)
        self._watchdog.start()
        if self.store is not None and self.checkpoint_interval > 0:
            self._checkpointer = threading.Thread(
                target=self._checkpoint_loop,
                name="duel-checkpointer", daemon=True)
            self._checkpointer.start()
        self._acceptor = threading.Thread(target=self._tcp.serve_forever,
                                          name="duel-acceptor", daemon=True)
        self._acceptor.start()
        return self.port

    def _spawn_worker(self) -> None:
        self._worker_seq += 1
        thread = threading.Thread(target=self._worker_loop,
                                  name=f"duel-worker-{self._worker_seq}",
                                  daemon=True)
        thread.start()
        self._worker_threads.append(thread)

    def request_fast_drain(self) -> None:
        """Skip the graceful wait: trip every in-flight query now.

        Async-signal-safe by construction (sets one event; the drain
        loop inside :meth:`stop` polls it), so the CLI's second-SIGINT
        handler may call it directly.
        """
        self._fast.set()

    def stop(self) -> None:
        """Graceful drain: finish admitted queries, then hang up."""
        if self._tcp is None:
            return
        self._stopping = True
        self.health.set_draining()
        self._gauge_sync()
        if self.qlog is not None:
            self.qlog.server_event("drain_begin",
                                   clients=self.connections(),
                                   inflight=self.inflight())
        self._tcp.shutdown()          # stop accepting new connections
        for _ in self._worker_threads:
            self._queue.put(_STOP)    # after all admitted work
        deadline = time.monotonic() + self.drain_timeout
        tripped = False
        for thread in self._worker_threads:
            while thread.is_alive():
                if self._fast.is_set() and not tripped:
                    tripped = True
                    if self.qlog is not None:
                        self.qlog.server_event("drain_fast")
                    self._cancel_all_conns("server shutdown")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                thread.join(timeout=min(0.2, remaining))
            if thread.is_alive() and not tripped:
                # Past the drain budget: trip every in-flight token so
                # the stuck queries come back as graceful cancellations.
                tripped = True
                self._cancel_all_conns("server shutdown")
            if thread.is_alive():
                thread.join(timeout=self.drain_timeout)
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5)
            self._watchdog = None
        if self._checkpointer is not None:
            self._checkpointer.join(timeout=5)
            self._checkpointer = None
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.send({"ev": "bye", "reason": "server shutdown"})
            conn.alive = False
        self._tcp.server_close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=5)
        self._tcp = None
        self._worker_threads = []
        if self.store is not None:
            # A clean shutdown leaves a fresh checkpoint behind so the
            # next start replays (almost) nothing.
            try:
                self.checkpoint()
            except Exception:
                self._count("serve_checkpoint_errors_total")
            self.store.close()

    def _cancel_all_conns(self, reason: str) -> None:
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.cancel_all(reason)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def inflight(self) -> int:
        """Admitted-but-unfinished queries across all clients."""
        with self._conns_lock:
            conns = list(self._conns)
        return sum(len(conn.pending) for conn in conns)

    def queued(self) -> int:
        return self._queue.qsize()

    def connections(self) -> int:
        with self._conns_lock:
            return len(self._conns)

    # -- metrics helpers ---------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_sync(self) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge("serve_clients").set(self.connections())
        self.metrics.gauge("serve_inflight").set(self.inflight())
        self.metrics.gauge("serve_queued").set(self.queued())
        self.metrics.gauge("serve_parked_sessions").set(
            self.sessions.parked_count())
        self.metrics.gauge("serve_health").set(self.health.code())

    def _server_event(self, kind: str, **fields) -> None:
        if self.qlog is not None:
            self.qlog.server_event(kind, **fields)

    # -- health detail (/healthz body + the ``health`` op) -------------------
    def health_detail(self) -> dict:
        """Per-subsystem health, one JSON-able dict.

        The shared payload behind the ``/healthz`` second body line
        and the wire ``health`` op — breaker window, journal
        lsn/segments, session table occupancy, watchdog liveness and
        the slow-query tail the ops console renders.
        """
        breaker = self.health.breaker
        sweep = self._watchdog_last_sweep
        detail = {
            "status": self.health.state(),
            "breaker": {"state": breaker.state(),
                        "threshold": breaker.threshold,
                        "window_s": breaker.window,
                        "cooldown_s": breaker.cooldown,
                        "trips": breaker.trips,
                        "rejections": breaker.rejections},
            "sessions": {"active": self.sessions.count(),
                         "parked": self.sessions.parked_count(),
                         "clients": self.connections(),
                         "inflight": self.inflight(),
                         "queued": self.queued()},
            "watchdog": {
                "last_sweep_age_s": None if sweep is None
                else round(time.monotonic() - sweep, 3),
                "reaped": self.reaped,
                "hard_cancels": self.hard_cancels,
                "workers_lost": self.workers_lost},
            "served": self.served,
            "rejected": self.rejected,
            "slow_queries": list(self.slow_queries),
        }
        if self.store is not None:
            journal = self.store.journal
            detail["journal"] = {"lsn": journal.lsn,
                                 "segments": len(journal.segments()),
                                 "checkpoints": self.checkpoints}
        if self.statements is not None:
            detail["statements"] = self.statements.state()
        if self.tracelog is not None:
            detail["traces_exported"] = self.tracelog.exported
        detail["accesses"] = {"served": self.accesses_served}
        if self.accesslog is not None:
            detail["accesses"]["exported"] = self.accesslog.exported
            detail["accesses"]["sample"] = self.accesslog.sample
        detail["cache"] = self._cache_detail()
        return detail

    def _cache_detail(self) -> dict:
        """Fleet-wide page-cache section of :meth:`health_detail`.

        Per-session caches all fold their per-query deltas into the
        shared metrics registry, so the server-level view is just the
        registry's ``cache_*`` counters plus the configured policy.
        """
        policy = self.sessions.page_cache_policy()
        section: dict = {
            "policy": policy.mode if policy is not None else "off"}
        if policy is not None:
            section["page_size"] = policy.page_size
            section["capacity"] = policy.capacity
        if self.metrics is not None:
            hits = self.metrics.counter("cache_hits").value
            misses = self.metrics.counter("cache_misses").value
            looked = hits + misses
            section.update({
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / looked, 4) if looked else 0.0,
                "evictions":
                    self.metrics.counter("cache_evictions").value,
                "physical_reads":
                    self.metrics.counter("physical_reads").value,
                "logical_reads":
                    self.metrics.counter("target_reads_total").value,
                "prefetched_bytes":
                    self.metrics.counter("prefetched_bytes").value,
                "prefetch_hits":
                    self.metrics.counter("prefetch_hits").value,
            })
        return section

    # -- the watchdog -------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self.watchdog_tick):
            try:
                now = time.monotonic()
                self._heartbeat_pass(now)
                self._deadline_pass(now)
                expired = self.sessions.sweep_parked()
                if expired:
                    self._count("serve_sessions_expired_total", expired)
                    self._server_event("session_expired", count=expired)
                self._gauge_sync()
                self._watchdog_last_sweep = time.monotonic()
            except Exception:             # the watchdog must outlive
                self._count("serve_watchdog_errors_total")  # any one bug

    def _heartbeat_pass(self, now: float) -> None:
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            return
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            if not conn.alive or conn.reaped:
                continue
            idle = now - conn.last_recv
            unanswered = (conn.ping_sent_at is not None
                          and conn.ping_sent_at > conn.last_recv)
            if idle >= self.heartbeat_timeout and unanswered:
                self._reap(conn, "heartbeat timeout")
                continue
            if idle >= self.heartbeat_interval and (
                    not unanswered
                    or now - conn.ping_sent_at >= self.heartbeat_interval):
                conn.ping_seq += 1
                conn.ping_sent_at = now
                self._count("serve_pings_total")
                conn.send({"ev": "ping", "seq": conn.ping_seq})

    def _reap(self, conn: _Connection, reason: str) -> None:
        conn.reaped = True
        self.reaped += 1
        self._count("serve_reaped_total")
        self._server_event("reaped", client=conn.client.client_id,
                           reason=reason)
        conn.cancel_all(reason)
        conn.close_transport()

    def _deadline_pass(self, now: float) -> None:
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            for pending in conn.pending_list():
                with pending.lock:
                    if not pending.started or pending.done:
                        continue
                    started_at = pending.started_at
                    hard_at = pending.hard_cancelled_at
                    deadline = pending.deadline_s
                if deadline is None:
                    deadline = DEFAULT_WATCHDOG_DEADLINE
                if hard_at is None:
                    if now - started_at > 1.5 * deadline:
                        self._hard_cancel(pending, now)
                elif now - hard_at > self.watchdog_grace:
                    self._declare_worker_lost(pending)

    def _hard_cancel(self, pending: _Pending, now: float) -> None:
        """Escalation stage 1: trip the token, async-raise into the worker."""
        pending.client.token.trip("watchdog deadline")
        raised = False
        with pending.lock:
            pending.hard_cancelled_at = now
            if pending.done:
                return
            if pending.interruptible and pending.worker_tid is not None:
                raised = _async_raise(pending.worker_tid)
        self.hard_cancels += 1
        self._count("serve_watchdog_hard_cancels_total")
        self._server_event("hard_cancel", client=pending.client.client_id,
                           request=pending.request_id, raised=raised)

    def _declare_worker_lost(self, pending: _Pending) -> None:
        """Escalation stage 2: the worker ignored even the async raise.

        Crash-only recovery: settle the session's leases on the
        worker's behalf (restores any pending snapshot, releases the
        RW lock, poisons the session), answer the client, and replace
        the lost worker thread so the pool keeps its size.  The zombie
        thread may wake later; ``finish_pending`` being idempotent
        means it can no longer send frames or double-release anything.
        """
        conn = pending.conn
        settled = self.sessions.reclaim(pending.client)
        first = conn.finish_pending(pending)
        if not first:
            return                     # the worker won the race after all
        self.workers_lost += 1
        self._count("serve_workers_lost_total")
        self._server_event("worker_lost", client=pending.client.client_id,
                           request=pending.request_id, leases=settled)
        if pending.idem is not None:
            pending.client.idem_abandon(pending.idem)
        self._count("serve_outcome_cancelled_total")
        lost_frame = protocol.terminal(
            pending.request_id, "cancelled",
            {"values": 0, "kind": "watchdog",
             "diagnostic": "(stopped: worker lost past watchdog "
                           "deadline, session poisoned)"})
        lost_frame["trace"] = pending.trace_id
        conn.send(lost_frame)
        lost = pending.worker_thread
        if lost is not None and lost in self._worker_threads:
            self._worker_threads.remove(lost)
            self._spawn_worker()
        self._gauge_sync()

    # -- durability: checkpoints, recovery, simulated crash ------------------
    def _checkpoint_loop(self) -> None:
        while not self._watchdog_stop.wait(self.checkpoint_interval):
            try:
                self.checkpoint()
            except Exception:          # a checkpoint bug must not kill
                self._count("serve_checkpoint_errors_total")  # serving

    def checkpoint(self) -> Optional[int]:
        """Write one durable checkpoint; returns its journal lsn.

        Under the RW *write* lock (no query is mutating the target,
        no write record can be appended): rotate the journal — the
        returned lsn is the checkpoint's high-water mark and every
        later record lands in segments truncation will not touch —
        then serialize the target snapshot and the session table.
        The lock is released before the (comparatively slow) disk
        write; only after the checkpoint is durably renamed into
        place are the sealed segments it supersedes deleted.
        """
        store = self.store
        if store is None or self._crashed:
            return None
        rw = self.sessions._rw
        rw.acquire_write()
        try:
            ckpt_lsn = store.journal.rotate()
            snap = target_snapshot.take(self.sessions.program).serialize()
            table = self.sessions.export_state()
        finally:
            rw.release_write()
        store.write_checkpoint(ckpt_lsn, {"lsn": ckpt_lsn,
                                          "snapshot": snap,
                                          "sessions": table})
        removed = store.journal.truncate_sealed()
        self.checkpoints += 1
        self._count("serve_checkpoints_total")
        self._server_event("checkpoint", lsn=ckpt_lsn,
                           sessions=len(table), segments_removed=removed)
        return ckpt_lsn

    def _recover(self) -> None:
        """Rebuild target + sessions from checkpoint and journal.

        Runs before the listener binds.  The order is load-bearing:
        restore the checkpoint snapshot, then walk post-checkpoint
        journal records *in lsn order* — re-driving each committed
        ``write`` raw (effects persist; lsn order is the original
        target apply order) and each alias define under take/restore
        isolation (binds the alias, rolls back any incidental target
        effect the write replay already applied).  Replay drives run
        with the query log detached, so the exactly-once audit a
        chaos harness performs over qlogs spans the restart cleanly.
        """
        store = self.store
        journal = store.journal
        self._server_event("recover_begin",
                           torn=journal.recovered_torn_tail)
        if journal.recovered_torn_tail:
            self._count("serve_journal_torn_total")
            self._server_event("journal_torn")
        state: dict = {}
        ckpt_lsn = 0
        loaded = store.load_checkpoint()
        if loaded is not None:
            ckpt_lsn, payload = loaded
            try:
                snap = Snapshot.deserialize(payload["snapshot"],
                                            self.sessions.program)
                target_snapshot.restore(self.sessions.program, snap)
                state = {entry["key"]: dict(entry, closed=False,
                                            idem=dict(entry["idem"]),
                                            limits=dict(entry["limits"]),
                                            aliases=list(entry["aliases"]))
                         for entry in payload.get("sessions", [])}
            except (ValueError, KeyError, TypeError):
                # A checkpoint that will not deserialize is treated
                # like no checkpoint at all: fresh target, replay
                # whatever journal segments survive.
                state = {}
                ckpt_lsn = 0
                self._count("serve_checkpoint_errors_total")
        ckpt_aliases = {key: list(entry.get("aliases") or [])
                        for key, entry in state.items()}
        records = list(journal.replay(ckpt_lsn))
        state, _ = fold_sessions(state, records)
        # Build every surviving session first (closed ones too: their
        # committed writes still need a session to replay in), then
        # replay in order.
        clients: dict = {}
        replayed_aliases: dict = {}
        for key, entry in state.items():
            clients[key] = self.sessions.resurrect(entry)
            replayed_aliases[key] = set()
        for key, client in clients.items():
            for text in ckpt_aliases.get(key, ()):
                self._replay_alias(client, text)
                replayed_aliases[key].add(text)
        writes_ok = writes_bad = 0
        for _, record in records:
            kind = record.get("k")
            if kind not in ("write", "sess_alias"):
                continue
            client = clients.get(record.get("key"))
            text = record.get("text")
            if client is None or not isinstance(text, str):
                continue
            if kind == "write":
                if self._replay_write(client, text):
                    writes_ok += 1
                else:
                    writes_bad += 1
            elif text not in replayed_aliases[record["key"]]:
                self._replay_alias(client, text)
                replayed_aliases[record["key"]].add(text)
        # Park the survivors.  Every resurrected session comes back
        # *parked* — the crash disconnected everybody — under its
        # original resume key and the full TTL.
        parked = 0
        for key, entry in state.items():
            client = clients[key]
            self.sessions.finish_resurrect(client)
            if not entry.get("closed") \
                    and self.sessions.adopt_parked(client, self.resume_ttl):
                parked += 1
        self.recovered_sessions = parked
        self.replayed_writes = writes_ok
        self._count("serve_recovered_sessions_total", parked)
        self._count("serve_replayed_writes_total", writes_ok)
        if writes_bad:
            self._count("serve_replay_failures_total", writes_bad)
        self._server_event("recover_done", lsn=journal.lsn,
                           checkpoint_lsn=ckpt_lsn, sessions=parked,
                           writes=writes_ok, failed_writes=writes_bad)
        self._gauge_sync()

    def _replay_write(self, client: ClientSession, text: str) -> bool:
        """Re-apply one journaled committed write; effects persist."""
        try:
            outcome = None
            for kind, _ in client.session.ievents(text):
                if kind != "value":
                    outcome = kind
            return outcome == "done"
        except Exception:
            return False

    def _replay_alias(self, client: ClientSession, text: str) -> None:
        """Re-drive one alias define under take/restore isolation."""
        program = self.sessions.program
        checkpoint = target_snapshot.take(program)
        try:
            for _ in client.session.ievents(text):
                pass
        except Exception:
            pass
        finally:
            target_snapshot.restore(program, checkpoint)
            client.session.evaluator.invalidate_target_caches()

    def simulate_crash(self) -> None:
        """Die the way SIGKILL would, in-process (chaos harness hook).

        No drain, no parking, no final checkpoint, no journal close:
        the listener and every client socket are torn down hard, the
        journal is poisoned (a straggler worker must never scribble
        on a state dir a restarted server has taken over), and the
        service threads are told to exit without any of the cleanup
        a real SIGKILL would skip.  Whatever reached the journal
        before this call is exactly what recovery gets.
        """
        self._crashed = True
        self._stopping = True
        if self.store is not None:
            self.store.journal.poison()
        self._watchdog_stop.set()
        tcp, self._tcp = self._tcp, None
        if tcp is not None:
            try:
                tcp.shutdown()
                tcp.server_close()
            except Exception:            # pragma: no cover - defensive
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.alive = False
            conn.cancel_all("server crashed")
            conn.close_transport()
        for _ in self._worker_threads:
            try:
                self._queue.put_nowait(_STOP)
            except queue.Full:           # workers drain it anyway
                break
        self._worker_threads = []

    # -- connection handling ----------------------------------------------
    def _handle_connection(self, handler) -> None:
        try:
            handler.connection.settimeout(None)
            handler.connection.setsockopt(socket.IPPROTO_TCP,
                                          socket.TCP_NODELAY, 1)
            # Bound sends only (SO_SNDTIMEO, not settimeout: reads on
            # this socket must still block indefinitely for idle
            # clients).  See SEND_TIMEOUT.
            seconds = int(SEND_TIMEOUT)
            micros = int((SEND_TIMEOUT - seconds) * 1e6)
            handler.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDTIMEO,
                struct.pack("ll", seconds, micros))
        except (OSError, AttributeError):
            pass
        if self._stopping or self.connections() >= self.max_clients:
            try:
                handler.wfile.write(protocol.encode(
                    {"ev": "error",
                     "error": "server full" if not self._stopping
                     else "server shutting down"}))
                handler.wfile.flush()
            except OSError:
                pass
            self._count("serve_refused_connections_total")
            return
        # First frame must be a well-formed hello.
        try:
            first = None
            while first is None:
                raw = handler.rfile.readline(protocol.MAX_FRAME + 2)
                if not raw:
                    return
                if raw.strip() == b"":
                    continue
                if not raw.endswith(b"\n") and len(raw) > protocol.MAX_FRAME:
                    raise protocol.ProtocolError(
                        "unterminated oversized frame")
                first = protocol.decode(raw)
            if protocol.validate_request(first) != "hello":
                raise protocol.ProtocolError("first frame must be 'hello'")
            if first["version"] != protocol.PROTOCOL_VERSION:
                raise protocol.ProtocolError(
                    f"unsupported protocol version {first['version']} "
                    f"(server speaks {protocol.PROTOCOL_VERSION})")
        except protocol.ProtocolError as error:
            self.protocol_errors += 1
            self._count("serve_protocol_errors_total")
            try:
                handler.wfile.write(protocol.encode(
                    {"ev": "error", "error": str(error)}))
                handler.wfile.flush()
            except OSError:
                pass
            return
        with self._conns_lock:
            self._client_seq += 1
            seq = self._client_seq
        name = first.get("client") or f"client-{seq}"
        client_id = f"{name}#{seq}"
        resumed = False
        client = None
        resume_key = first.get("resume")
        if resume_key:
            client = self.sessions.resume(resume_key, client_id)
            resumed = client is not None
        if client is None:
            client = self.sessions.open(client_id)
        conn = _Connection(client, handler.wfile, self,
                           sock=handler.connection)
        with self._conns_lock:
            self._conns.add(conn)
        self._count("serve_connections_total")
        if resumed:
            self._count("serve_resumes_total")
            self._server_event("session_resumed", client=client_id,
                               generation=client.generation)
        self._gauge_sync()
        conn.welcomed = conn.send(protocol.welcome(
            client_id, version=protocol.PROTOCOL_VERSION,
            limits=dict(client.session.governor.limits),
            per_client=self.per_client,
            resume=client.resume_key, resumed=resumed))
        try:
            self._serve_frames(conn,
                               protocol.read_frames_budgeted(handler.rfile))
        except protocol.ProtocolError as error:
            self.protocol_errors += 1
            self._count("serve_protocol_errors_total")
            conn.send({"ev": "error", "error": str(error)})
        except OSError:
            pass
        finally:
            conn.alive = False
            conn.cancel_all("client disconnected")
            with self._conns_lock:
                self._conns.discard(conn)
            if (conn.clean_bye or self._stopping or client.poisoned
                    or not conn.welcomed or self.resume_ttl <= 0):
                # The session object dies with the connection; its
                # aliases and governor state are unreachable
                # afterwards, which is the isolation contract.
                self.sessions.close(client.client_id)
            elif self.sessions.park(client, self.resume_ttl):
                self._count("serve_parked_total")
                self._server_event("session_parked",
                                   client=client.client_id,
                                   reason="reaped" if conn.reaped
                                   else "disconnect")
            self._gauge_sync()

    def _serve_frames(self, conn: _Connection, frames) -> None:
        """The connection thread's read loop (control ops run inline).

        ``frames`` yields dicts *or* :class:`~repro.serve.protocol.
        ProtocolError` instances (the budgeted reader); each malformed
        frame is answered with a structured ``error`` frame carrying
        the running count, and the connection is dropped once
        :data:`~repro.serve.protocol.MALFORMED_BUDGET` is spent.
        """
        malformed = 0

        def charge(error) -> bool:
            nonlocal malformed
            malformed += 1
            self.protocol_errors += 1
            self._count("serve_protocol_errors_total")
            conn.send({"ev": "error", "error": str(error),
                       "malformed": malformed,
                       "budget": protocol.MALFORMED_BUDGET})
            if malformed >= protocol.MALFORMED_BUDGET:
                conn.send({"ev": "bye",
                           "reason": "malformed-frame budget exhausted"})
                return False
            return True

        for item in frames:
            conn.touch()
            if isinstance(item, protocol.ProtocolError):
                if not charge(item):
                    return
                continue
            try:
                op = protocol.validate_request(item)
            except protocol.ProtocolError as error:
                if not charge(error):
                    return
                continue
            if op == "bye":
                conn.clean_bye = True
                conn.send({"ev": "bye"})
                return
            if op == "hello":
                conn.send({"ev": "error",
                           "error": "already said hello"})
                continue
            if op == "duel":
                self._admit(conn, item)
            elif op == "accesses":
                self._admit(conn, item, access=True)
            elif op == "cancel":
                self._op_cancel(conn, item)
            elif op == "alias":
                self._op_alias(conn, item)
            elif op == "limits":
                self._op_limits(conn, item)
            elif op == "stats":
                self._op_stats(conn, item)
            elif op == "statements":
                self._op_statements(conn, item)
            elif op == "health":
                self._op_health(conn, item)
            elif op == "ping":
                conn.send({"ev": "pong", "id": item["id"]})
            # op == "pong": touch() above already counted it as life.

    # -- admission control -------------------------------------------------
    def _reject(self, conn: _Connection, request_id: int, reason: str,
                **extra) -> None:
        self.rejected += 1
        self._count("serve_rejected_total")
        conn.send(protocol.rejected(request_id, reason, **extra))

    def _admit(self, conn: _Connection, frame: dict,
               access: bool = False) -> None:
        request_id = frame["id"]
        client = conn.client
        # Every duel op gets a trace id — client-supplied (already
        # validated) or server-assigned — echoed on every frame this
        # request produces, rejections included.
        trace_id = frame.get("trace")
        if trace_id is None:
            trace_id = make_trace_id()
        if self._stopping:
            self._reject(conn, request_id, "shutting down",
                         trace=trace_id)
            return
        if client.poisoned:
            self._reject(conn, request_id, "poisoned", trace=trace_id,
                         detail="a previous query's worker was lost; "
                                "reconnect to get a fresh session")
            return
        if client.inflight >= self.per_client:
            self._reject(
                conn, request_id, "busy", trace=trace_id,
                detail=f"client already has {client.inflight} "
                       f"quer{'y' if client.inflight == 1 else 'ies'} "
                       f"in flight (cap {self.per_client})")
            return
        # Degraded mode: while the breaker is open, classify the query
        # and refuse writes.  The closed-breaker hot path pays nothing.
        writes = None
        breaker = self.health.breaker
        if breaker.open:
            writes = self.sessions.classify(client, frame["text"])
            if writes and not breaker.allow_write():
                self._count("serve_degraded_rejections_total")
                self._reject(
                    conn, request_id, "degraded", trace=trace_id,
                    detail="target faulting: circuit breaker "
                           f"{breaker.state()}, writes rejected "
                           "(reads still served)")
                return
        # An ``accesses`` op has no values to replay, so no idempotency.
        idem = None if access else frame.get("idem")
        if idem is not None and not client.idem_start(idem):
            cached = client.idem_lookup(idem)
            if isinstance(cached, dict):
                self._replay_idem(conn, request_id, cached, trace_id)
            else:
                self._reject(conn, request_id, "busy", trace=trace_id,
                             detail=f"idempotent query {idem!r} is "
                                    "still in flight")
            return
        sampled = self.tracelog.sample_next() \
            if self.tracelog is not None else False
        pending = _Pending(conn, client, request_id, frame["text"],
                           idem=idem, writes=writes, trace_id=trace_id,
                           sampled=sampled,
                           profile=bool(frame.get("profile")),
                           access=access)
        conn.add_pending(pending)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            conn.finish_pending(pending)
            if idem is not None:
                client.idem_abandon(idem)
            if writes and breaker.open:
                breaker.record_fault()    # release a claimed probe slot
            self._reject(
                conn, request_id, "overloaded", trace=trace_id,
                detail=f"query queue full ({self.queue_depth} deep)")
            return
        self._gauge_sync()

    def _replay_idem(self, conn: _Connection, request_id: int,
                     cached: dict, trace_id: Optional[str] = None) -> None:
        """Answer a retried idempotency token from the cache."""
        self._count("serve_idem_replays_total")
        lines = cached.get("lines") or []
        for start in range(0, len(lines), protocol.CHUNK):
            if not conn.send(protocol.value_frame(
                    request_id, lines[start:start + protocol.CHUNK],
                    trace=trace_id)):
                return
        frame = dict(cached["outcome"])
        frame["id"] = request_id
        frame["replayed"] = True
        if trace_id is not None:
            frame["trace"] = trace_id
        if cached.get("clipped"):
            frame["replay_truncated"] = True
        conn.send(frame)

    # -- control operations ------------------------------------------------
    def _op_cancel(self, conn: _Connection, frame: dict) -> None:
        pending = conn.find_pending(frame["target"])
        if pending is None:
            conn.send({"ev": "cancel", "id": frame["id"],
                       "target": frame["target"], "found": False})
            return
        pending.cancel()
        self._count("serve_cancels_total")
        conn.send({"ev": "cancel", "id": frame["id"],
                   "target": frame["target"], "found": True})

    def _op_alias(self, conn: _Connection, frame: dict) -> None:
        client = conn.client
        if not client.lock.acquire(timeout=1.0):
            conn.send(protocol.rejected(frame["id"], "busy",
                                        detail="a query is running"))
            return
        try:
            session = client.session
            aliases = {name: session.formatter.format(value)
                       for name, value in session.aliases().items()}
        finally:
            client.lock.release()
        conn.send({"ev": "alias", "id": frame["id"], "aliases": aliases})

    def _op_limits(self, conn: _Connection, frame: dict) -> None:
        governor = conn.client.session.governor
        name = frame.get("name")
        if name is not None:
            # Setting limits is allowed mid-query on purpose: raising
            # a deadline to rescue a long query is the use case.
            try:
                governor.set_limit(name, frame.get("value"))
            except ValueError as error:
                conn.send({"ev": "error", "id": frame["id"],
                           "error": str(error)})
                return
            self.sessions.note_limit(conn.client, name, frame.get("value"))
        conn.send({"ev": "limits", "id": frame["id"],
                   "limits": dict(governor.limits),
                   "policies": dict(governor.policies)})

    def _op_stats(self, conn: _Connection, frame: dict) -> None:
        client = conn.client
        conn.send({"ev": "stats", "id": frame["id"],
                   "query": dict(client.session.last_query_stats),
                   "client": {"queries": client.queries,
                              "inflight": client.inflight,
                              "generation": client.generation},
                   "server": {"clients": self.connections(),
                              "inflight": self.inflight(),
                              "queued": self.queued(),
                              "served": self.served,
                              "rejected": self.rejected,
                              "protocol_errors": self.protocol_errors,
                              "health": self.health.state(),
                              "breaker": self.health.breaker.state(),
                              "parked": self.sessions.parked_count(),
                              "reaped": self.reaped,
                              "hard_cancels": self.hard_cancels,
                              "workers_lost": self.workers_lost,
                              "slow_queries": self.slow_query_count,
                              "accesses": self.accesses_served,
                              "statements": len(self.statements)
                              if self.statements is not None else None,
                              "traces_exported": self.tracelog.exported
                              if self.tracelog is not None else None}})

    def _op_statements(self, conn: _Connection, frame: dict) -> None:
        """The fleet statement-statistics table, over the wire."""
        if self.statements is None:
            conn.send({"ev": "statements", "id": frame["id"],
                       "enabled": False, "rows": []})
            return
        rows = self.statements.snapshot(by=frame.get("by", "total_ms"),
                                        limit=frame.get("limit", 20))
        reply = {"ev": "statements", "id": frame["id"], "enabled": True,
                 "rows": rows}
        reply.update(self.statements.state())
        conn.send(reply)

    def _op_health(self, conn: _Connection, frame: dict) -> None:
        """Per-subsystem health detail, over the wire (ops console)."""
        reply = {"ev": "health", "id": frame["id"]}
        reply.update(self.health_detail())
        conn.send(reply)

    # -- query workers -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._drive(item)
            finally:
                self._queue.task_done()

    def _drive(self, pending: _Pending) -> None:
        conn = pending.conn
        if not pending.mark_started():
            if conn.finish_pending(pending):
                self._count("serve_outcome_cancelled_total")
                dropped = protocol.terminal(
                    pending.request_id, "cancelled",
                    {"values": 0,
                     "diagnostic": "(stopped: 0 values, interrupted)",
                     "kind": "cancel"})
                dropped["trace"] = pending.trace_id
                conn.send(dropped)
            return
        self.served += 1
        self._count("serve_queries_total")
        # Observability is all-or-nothing per query: one predicate
        # decides whether this request gets a span tree at all.
        trace = None
        if (self.tracelog is not None or self.statements is not None
                or self.slow_ms is not None or pending.profile):
            trace = RequestTrace(pending.trace_id,
                                 pending.client.resume_key,
                                 request_id=pending.request_id,
                                 text=pending.text,
                                 sampled=pending.sampled)
            trace.span("admission_queue",
                       (pending.started_at - pending.admitted_at)
                       * 1000.0)
        # The engine's per-AST-node tracer follows the sampling coin
        # (or an explicit profile request), so its per-pull cost is
        # diluted 1-in-N exactly like the export volume.
        engine_traced = pending.profile or (
            self.tracelog is not None and pending.sampled)
        session = pending.client.session
        prior_tracing = session.tracing
        if engine_traced:
            session.tracing = True
        session.current_trace_id = pending.trace_id
        stream_ms = 0.0
        batch: list[str] = []
        batch_bytes = 0
        values = 0
        request_id = pending.request_id
        outcome_frame = None

        def send_values(batch: list) -> bool:
            nonlocal stream_ms
            if trace is None:
                return conn.send(protocol.value_frame(
                    request_id, batch, trace=pending.trace_id))
            t0 = time.monotonic()
            delivered = conn.send(protocol.value_frame(
                request_id, batch, trace=pending.trace_id))
            stream_ms += (time.monotonic() - t0) * 1000.0
            return delivered

        try:
            events = self.sessions.run(
                pending.client, pending.text, on_begin=pending.recheck,
                on_lock=(None if trace is None else
                         lambda kind, ms: trace.span("session_lock", ms,
                                                     mode=kind)),
                access=pending.access)
            with pending.lock:
                pending.interruptible = True
            for kind, payload in events:
                if kind == "value":
                    values += 1
                    if pending.access:
                        # The accesses op answers with the locality
                        # profile; the values themselves stay home.
                        continue
                    batch.append(payload)
                    batch_bytes += len(payload)
                    if pending.idem is not None:
                        pending.idem_note(payload)
                    if len(batch) >= protocol.CHUNK \
                            or batch_bytes >= protocol.CHUNK_BYTES:
                        if not send_values(batch):
                            # Peer is gone: stop driving promptly.
                            pending.cancel("client disconnected")
                        batch = []
                        batch_bytes = 0
                else:
                    outcome_frame = protocol.terminal(request_id, kind,
                                                      payload)
        except DuelCancelled as cancel:
            # The watchdog's async raise lands here when it interrupts
            # the loop body itself (between generator resumptions).
            outcome_frame = protocol.terminal(
                request_id, "cancelled",
                {"values": values,
                 "kind": getattr(cancel, "kind", None) or "cancel",
                 "diagnostic": cancel.diagnostic(values)})
        except DuelError as error:
            # Escaped the drive (e.g. the session was poisoned between
            # admission and pickup): a faulted query, not a server bug.
            outcome_frame = protocol.terminal(
                request_id, "faulted",
                {"values": values, "error": str(error),
                 "error_type": type(error).__name__})
        except Exception as error:    # defensive: a drive bug must not
            outcome_frame = protocol.terminal(  # kill the worker
                request_id, "error",
                {"values": values, "error": f"internal error: {error}",
                 "error_type": type(error).__name__})
            self._count("serve_internal_errors_total")
        finally:
            with pending.lock:
                pending.interruptible = False
            session.current_trace_id = None
            if engine_traced:
                session.tracing = prior_tracing
            first = conn.finish_pending(pending)
            if first:
                try:
                    if batch:
                        send_values(batch)
                    if outcome_frame is None:
                        outcome_frame = protocol.terminal(
                            request_id, "error",
                            {"values": values,
                             "error": "internal error: drive ended "
                                      "without a terminal event"})
                    outcome_frame["trace"] = pending.trace_id
                    if trace is not None:
                        self._finish_observe(pending, trace, session,
                                             stream_ms, outcome_frame)
                    # Count and report *before* sending: a fast client
                    # must never observe its terminal frame while the
                    # matching counter still reads the old value.
                    self._count(
                        f"serve_outcome_{outcome_frame['ev']}_total")
                    self._report_health(pending, outcome_frame)
                    self._settle_idem(pending, outcome_frame)
                    if pending.access:
                        self.accesses_served += 1
                        self._count("serve_accesses_total")
                        outcome_frame = _accesses_frame(outcome_frame)
                    conn.send(outcome_frame)
                except Exception:         # a reply we cannot frame must
                    self.protocol_errors += 1     # not kill the worker
                    self._count("serve_protocol_errors_total")
            elif pending.idem is not None:
                # The watchdog already answered; our result is suspect.
                pending.client.idem_abandon(pending.idem)
            self._gauge_sync()

    def _finish_observe(self, pending: _Pending, trace: RequestTrace,
                        session, stream_ms: float,
                        outcome_frame: dict) -> None:
        """Close out one traced request: spans, statements, slow log.

        Runs on the driving worker after the terminal frame is built
        and before it is sent; every failure here is contained by the
        caller's catch-all (observability must never cost a reply).
        """
        phases = dict(session.last_query_phases or {})
        if "parse" in phases:
            trace.span("parse", phases["parse"])
        drive_ms = phases.get("eval", 0.0) + phases.get("format", 0.0)
        if "eval" in phases or "format" in phases:
            trace.span("drive", drive_ms,
                       eval=round(phases.get("eval", 0.0), 3),
                       format=round(phases.get("format", 0.0), 3))
        trace.span("stream", stream_ms)
        trace.outcome = outcome_frame["ev"]
        fp = session.last_fingerprint
        if fp is not None:
            trace.fingerprint = fp.hash
            outcome_frame["fingerprint"] = fp.hash
        if pending.profile or (self.tracelog is not None
                               and pending.sampled):
            engine_trace = getattr(session, "last_trace", None)
            if engine_trace is not None:
                trace.engine_spans = [span.as_dict()
                                      for span in engine_trace.spans]
        if pending.profile:
            outcome_frame["profile"] = {
                "trace_id": trace.trace_id,
                "spans": list(trace.spans),
                "engine_spans": list(trace.engine_spans),
            }
        if self.statements is not None and fp is not None:
            serve_phases = trace.phase_ms()
            self.statements.record_phases(
                fp.hash, {name: serve_phases[name]
                          for name in ("queue", "lock", "stream")
                          if name in serve_phases})
        total_ms = trace.total_ms()
        slow = self.slow_ms is not None and total_ms >= self.slow_ms
        if slow:
            self.slow_query_count += 1
            self._count("serve_slow_queries_total")
            entry = {"trace_id": trace.trace_id,
                     "client": pending.client.client_id,
                     "request": pending.request_id,
                     "outcome": outcome_frame["ev"],
                     "wall_ms": round(total_ms, 3),
                     "text": pending.text}
            if fp is not None:
                entry["fingerprint"] = fp.hash
            self.slow_queries.append(entry)
            self._server_event("slow_query", **entry)
            if self.recorder is not None:
                try:
                    self.recorder.pin(
                        "slow_query",
                        {"trace": trace.as_dict(),
                         "threshold_ms": self.slow_ms})
                except Exception:
                    pass           # pinning must never cost a reply
        if self.tracelog is not None \
                and self.tracelog.should_export(trace, slow=slow):
            self.tracelog.export(trace)

    def _report_health(self, pending: _Pending, outcome_frame: dict) -> None:
        """Feed the circuit breaker from a terminal outcome."""
        breaker = self.health.breaker
        ev = outcome_frame["ev"]
        if ev == "faulted" \
                and outcome_frame.get("error_type") in TARGET_FAULT_TYPES:
            if breaker.record_fault():
                self._count("serve_breaker_trips_total")
                self._server_event("breaker_open",
                                   client=pending.client.client_id,
                                   error=outcome_frame.get("error"))
        elif pending.writes:          # a half-open probe reporting back
            if ev in ("done", "truncated"):
                if breaker.record_ok():
                    self._count("serve_breaker_closes_total")
                    self._server_event("breaker_closed",
                                       client=pending.client.client_id)
            elif breaker.open:
                # Inconclusive probe (cancelled, internal error): keep
                # the breaker open for another cooldown.
                breaker.record_fault()

    def _settle_idem(self, pending: _Pending, outcome_frame: dict) -> None:
        """Cache (or abandon) the result of an ``idem``-tagged query."""
        token = pending.idem
        if token is None:
            return
        if outcome_frame["ev"] in ("done", "truncated", "cancelled",
                                   "faulted"):
            stored = {key: value for key, value in outcome_frame.items()
                      if key != "id"}
            result = {"lines": pending.idem_lines,
                      "clipped": pending.idem_clipped,
                      "outcome": stored}
            pending.client.idem_store(token, result)
            # Journal the completed entry so a token retried across a
            # server restart is still answered from the cache —
            # exactly-once spans the crash.
            self.sessions.note_idem(pending.client, token, result)
        else:
            # Internal errors are not results; let a retry re-run.
            pending.client.idem_abandon(token)


def run_server(ns, program, limit_kwargs: dict, out,
               ready=None, stop_event=None) -> int:
    """Boot a :class:`DuelServer` from parsed CLI flags and block.

    Reuses every unattended-observability flag the REPL grew in PRs
    2–4 — ``--query-log`` / ``--dump-dir`` / ``--metrics-port`` now
    aggregate *across clients* — and announces the bound endpoints on
    ``out`` (flushed line by line, so wrappers like
    ``scripts/serve_smoke.py`` can scrape the ports).  Blocks until
    SIGINT/SIGTERM (or ``stop_event``), then drains gracefully; a
    *second* SIGINT during the drain requests a fast drain (every
    in-flight query's token tripped immediately) instead of killing
    the process mid-cleanup.  ``ready`` (a ``threading.Event``) is set
    once serving, for embedders.
    """
    import signal

    from repro.obs.metrics import registry as process_registry

    metrics = process_registry()
    qlog = None
    if ns.query_log:
        from repro.obs.qlog import QueryLog
        try:
            qlog = QueryLog(ns.query_log,
                            fsync=getattr(ns, "query_log_fsync", False))
        except OSError as error:
            out.write(f"error: {error}\n")
            return 1
    recorder = None
    if ns.dump_dir:
        import os

        from repro.obs.recorder import FlightRecorder
        try:
            os.makedirs(ns.dump_dir, exist_ok=True)
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            return 1
        recorder = FlightRecorder(dump_dir=ns.dump_dir)
    # Fleet statement statistics are always on in serve mode: the
    # aggregation is bounded and lock-cheap, and a service without
    # per-shape latency answers is flying blind.
    from repro.obs.statements import StatementStats
    statements = StatementStats()
    tracelog = None
    if getattr(ns, "trace_json", None):
        from repro.obs.reqtrace import TraceLog
        try:
            tracelog = TraceLog(ns.trace_json,
                                sample=getattr(ns, "trace_sample", 1))
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            return 1
    accesslog = None
    if getattr(ns, "access_trace", None):
        from repro.obs.access import AccessLog
        try:
            accesslog = AccessLog(ns.access_trace,
                                  sample=getattr(ns, "access_sample", 1))
        except (OSError, ValueError) as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            if tracelog is not None:
                tracelog.close()
            return 1
    session_kwargs = dict(limit_kwargs)
    session_kwargs["symbolic"] = not ns.no_symbolic
    session_kwargs["optimize"] = ns.optimize
    page_cache = getattr(ns, "page_cache_policy", None)
    if page_cache is not None:
        session_kwargs["page_cache"] = page_cache
    from repro.serve.journal import JournalError
    try:
        server = DuelServer(
            program, host=ns.host, port=ns.port,
            workers=ns.workers, queue_depth=ns.queue_depth,
            max_clients=ns.max_clients, per_client=ns.per_client,
            session_kwargs=session_kwargs,
            metrics=metrics, qlog=qlog, recorder=recorder,
            statements=statements, tracelog=tracelog,
            accesslog=accesslog,
            slow_ms=getattr(ns, "slow_ms", None),
            drain_timeout=ns.drain_timeout,
            heartbeat_interval=getattr(ns, "heartbeat_interval", 10.0),
            heartbeat_timeout=getattr(ns, "heartbeat_timeout", 30.0),
            resume_ttl=getattr(ns, "resume_ttl", 60.0),
            breaker_threshold=getattr(ns, "breaker_threshold", 5),
            breaker_window=getattr(ns, "breaker_window", 30.0),
            breaker_cooldown=getattr(ns, "breaker_cooldown", 10.0),
            state_dir=getattr(ns, "state_dir", None),
            journal_fsync=getattr(ns, "journal_fsync", "interval:1.0"),
            checkpoint_interval=getattr(ns, "checkpoint_interval", 30.0),
            commit_writes=getattr(ns, "commit_writes", False))
    except (JournalError, ValueError) as error:
        out.write(f"error: {error}\n")
        if qlog is not None:
            qlog.close()
        if accesslog is not None:
            accesslog.close()
        return 1
    metrics_server = None
    if ns.metrics_port is not None:
        from repro.obs.exposition import MetricsServer
        metrics_server = MetricsServer(
            metrics, port=ns.metrics_port,
            health=server.health.healthz,
            collectors=(statements.prometheus_lines,
                        statements.prometheus_target_lines))
        try:
            mport = metrics_server.start()
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            return 1
        out.write(f"metrics: http://127.0.0.1:{mport}/metrics\n")
    try:
        port = server.start()
    except OSError as error:
        out.write(f"error: {error}\n")
        if qlog is not None:
            qlog.close()
        if metrics_server is not None:
            metrics_server.stop()
        return 1
    if server.store is not None:
        out.write(f"state: {getattr(ns, 'state_dir', None)} "
                  f"(recovered {server.recovered_sessions} sessions, "
                  f"replayed {server.replayed_writes} writes)\n")
    out.write(f"serving on {ns.host}:{port}\n")
    try:
        out.flush()
    except (AttributeError, OSError):
        pass
    stopper = stop_event if stop_event is not None else threading.Event()

    def request_stop(signum=None, frame=None):
        # First signal: begin the graceful drain.  A second signal
        # while draining escalates to a fast drain (cancel everything)
        # instead of raising KeyboardInterrupt mid-cleanup.
        if stopper.is_set():
            server.request_fast_drain()
        stopper.set()

    previous = {}
    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except ValueError:            # not the main thread
            pass
    if ready is not None:
        ready.set()
    exit_code = 0
    try:
        stopper.wait()
    except Exception as error:
        # An unhandled main-loop exception is a server crash: leave a
        # black box (flight-recorder post-mortem) before dying, then
        # still run the drain so clients get a bye when possible.
        exit_code = 1
        if recorder is not None:
            try:
                path = recorder.dump("server_crash", metrics=metrics)
                out.write(f"post-mortem dump: {path}\n")
            except Exception:
                pass
        out.write(f"fatal: {type(error).__name__}: {error}\n")
    finally:
        out.write("draining...\n")
        try:
            out.flush()
        except (AttributeError, OSError):
            pass
        try:
            # The handlers stay installed through the drain so a
            # second SIGINT reaches request_stop (fast drain), never
            # KeyboardInterrupt.
            server.stop()
        finally:
            for signum, handler in previous.items():
                try:
                    signal.signal(signum, handler)
                except ValueError:
                    pass
        if metrics_server is not None:
            metrics_server.stop()
        if qlog is not None:
            qlog.close()
        if tracelog is not None:
            tracelog.close()
        if accesslog is not None:
            accesslog.close()
        out.write(f"served {server.served} queries "
                  f"({server.rejected} rejected)\n")
    return exit_code


def main(argv=None) -> int:
    """``duel-serve``: the standalone server CLI.

    Shares flags (and the target bootstrap) with ``python -m repro
    --serve``; this entry point just forces ``--serve`` on.
    """
    import sys
    from repro.cli import main as cli_main
    args = list(argv) if argv is not None else sys.argv[1:]
    return cli_main(["--serve", *args])


if __name__ == "__main__":  # pragma: no cover
    import sys
    raise SystemExit(main(sys.argv[1:]))
