"""Chaos harness: a deterministic fault-injecting TCP proxy.

PR 1 gave the *target* layer a fault injector
(:class:`~repro.target.interface.FaultInjectingBackend`); this module
is its twin for the *network* layer.  A :class:`ChaosProxy` sits
between :class:`~repro.serve.client.DuelClient` and
:class:`~repro.serve.server.DuelServer` and applies a scripted or
seeded :class:`FaultPlan` to each proxied connection:

``drop``
    forward ``at`` bytes in the chosen direction, then close both
    sides cleanly — the mid-conversation disconnect;
``reset``
    like ``drop`` but the client side is closed with ``SO_LINGER``
    zero, so the peer sees a hard TCP RST (``ECONNRESET``) instead of
    an orderly EOF — often mid-frame;
``truncate``
    forward *exactly* ``at`` bytes — cutting the stream mid-frame at
    a byte boundary the framing layer never chose — then close;
``delay``
    once ``at`` bytes have passed, hold the next chunk for
    ``seconds`` before forwarding (a latency spike);
``stall``
    once ``at`` bytes have passed, stop forwarding for ``seconds``
    while keeping the connection open — the slow-loris wedge the
    server's heartbeats and send timeouts exist for.

Determinism is the whole point: every fault is scheduled by byte
offset and connection index, and the seeded plan derives its choices
from ``random.Random(seed)`` per connection — the same seed replays
the same chaos, so a failing chaos test is a *reproducible* chaos
test.  The proxy records everything it injected in :attr:`events`.

Usage::

    plan = FaultPlan.scripted({0: [drop_after(200)]})
    proxy = ChaosProxy(("127.0.0.1", server.port), plan)
    port = proxy.start()
    client = DuelClient(port=port, ...)   # speaks through the chaos
    ...
    proxy.stop()

PR 7 adds *process-level* faults for the crash-only durability layer:
:class:`ServerProcess` runs a real ``python -m repro --serve``
subprocess (with ``--state-dir``) that the harness can
:meth:`~ServerProcess.sigkill` mid-workload and :meth:`restart
<ServerProcess.restart>` against the same state directory, and
:func:`tear_tail` truncates a journal segment mid-record — the
"killed between append and fsync" torn-tail crash the journal must
recover from, simulated deterministically at a byte offset.
"""

from __future__ import annotations

import os
import random
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from typing import Optional

#: Directions a directive can apply to (relative to the client).
UP = "up"        # client -> server bytes
DOWN = "down"    # server -> client bytes

#: Every directive kind the proxy knows how to inject.
KINDS = ("drop", "reset", "truncate", "delay", "stall")

_RECV = 65536


class Directive:
    """One scheduled fault on one proxied connection.

    ``kind`` is one of :data:`KINDS`; ``at`` is the byte offset in
    ``direction`` at which the fault engages; ``seconds`` parametrizes
    ``delay`` and ``stall``.
    """

    __slots__ = ("kind", "at", "direction", "seconds", "done")

    def __init__(self, kind: str, at: int = 0, direction: str = DOWN,
                 seconds: float = 0.0):
        if kind not in KINDS:
            raise ValueError(f"unknown chaos kind {kind!r} "
                             f"(know: {', '.join(KINDS)})")
        if direction not in (UP, DOWN):
            raise ValueError(f"unknown direction {direction!r}")
        self.kind = kind
        self.at = int(at)
        self.direction = direction
        self.seconds = float(seconds)
        self.done = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", {self.seconds}s" if self.kind in ("delay", "stall") \
            else ""
        return f"<{self.kind} @{self.direction}:{self.at}{extra}>"


# -- directive shorthands (test vocabulary) --------------------------------
def drop_after(at: int, direction: str = DOWN) -> Directive:
    return Directive("drop", at, direction)


def reset_after(at: int, direction: str = DOWN) -> Directive:
    return Directive("reset", at, direction)


def truncate_after(at: int, direction: str = DOWN) -> Directive:
    return Directive("truncate", at, direction)


def delay_after(at: int, seconds: float,
                direction: str = DOWN) -> Directive:
    return Directive("delay", at, direction, seconds)


def stall_after(at: int, seconds: float,
                direction: str = DOWN) -> Directive:
    return Directive("stall", at, direction, seconds)


class FaultPlan:
    """What to inject, per accepted connection (0-based index).

    :meth:`scripted` maps explicit connection indices to directive
    lists (missing indices pass clean); :meth:`seeded` derives one
    directive per connection from a seed — deterministic pseudo-random
    chaos with a tunable fault rate.
    """

    def __init__(self, table: Optional[dict] = None,
                 default: Optional[list] = None):
        self._table = {index: list(directives)
                       for index, directives in (table or {}).items()}
        self._default = list(default or [])

    @classmethod
    def scripted(cls, table: dict,
                 default: Optional[list] = None) -> "FaultPlan":
        return cls(table, default)

    @classmethod
    def clean(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def seeded(cls, seed: int, connections: int, *, rate: float = 0.5,
               kinds=KINDS, min_at: int = 64, max_at: int = 4096,
               seconds: float = 0.2) -> "FaultPlan":
        """One deterministic directive per connection index.

        Each connection gets its own ``random.Random`` derived from
        ``(seed, index)``, so adding connections never reshuffles the
        faults of earlier ones.
        """
        table: dict[int, list[Directive]] = {}
        for index in range(connections):
            rng = random.Random(f"{seed}:{index}")
            if rng.random() >= rate:
                continue
            kind = rng.choice(list(kinds))
            at = rng.randint(min_at, max_at)
            direction = rng.choice((UP, DOWN))
            table[index] = [Directive(kind, at, direction, seconds)]
        return cls(table)

    def for_connection(self, index: int) -> list[Directive]:
        """Fresh directive copies for connection ``index``."""
        source = self._table.get(index, self._default)
        return [Directive(d.kind, d.at, d.direction, d.seconds)
                for d in source]


class _Kill(Exception):
    """Internal: a directive decided this connection dies now."""

    def __init__(self, reset: bool):
        self.reset = reset


class _ProxiedConnection:
    """One client<->server pipe pair under a directive list."""

    def __init__(self, proxy: "ChaosProxy", index: int,
                 client_sock: socket.socket, server_sock: socket.socket,
                 directives: list[Directive]):
        self.proxy = proxy
        self.index = index
        self.client_sock = client_sock
        self.server_sock = server_sock
        self.directives = directives
        self.sent = {UP: 0, DOWN: 0}
        self._lock = threading.Lock()
        self._closed = False

    # -- fault application -------------------------------------------------
    def _apply(self, direction: str, data: bytes) -> bytes:
        """Run due directives; returns the bytes to forward.

        Raises :class:`_Kill` when a terminal directive engages.
        """
        offset = self.sent[direction]
        for directive in self.directives:
            if directive.done or directive.direction != direction:
                continue
            if offset + len(data) <= directive.at:
                continue
            keep = max(directive.at - offset, 0)
            kind = directive.kind
            directive.done = True
            self.proxy._note(self.index, kind, direction, directive.at)
            if kind in ("drop", "truncate", "reset"):
                self.sent[direction] += keep
                if keep:
                    self._forward(direction, data[:keep])
                raise _Kill(reset=(kind == "reset"))
            if kind in ("delay", "stall"):
                # Forward the clean prefix, hold the rest.
                if keep:
                    self.sent[direction] += keep
                    self._forward(direction, data[:keep])
                    data = data[keep:]
                self.proxy._sleep(directive.seconds)
        return data

    def _forward(self, direction: str, data: bytes) -> None:
        dst = self.server_sock if direction == UP else self.client_sock
        dst.sendall(data)

    # -- pumping -----------------------------------------------------------
    def pump(self, direction: str) -> None:
        src = self.client_sock if direction == UP else self.server_sock
        try:
            while not self.proxy._stopping.is_set():
                data = src.recv(_RECV)
                if not data:
                    raise _Kill(reset=False)
                data = self._apply(direction, data)
                if data:
                    self.sent[direction] += len(data)
                    self._forward(direction, data)
        except _Kill as kill:
            self.close(reset=kill.reset)
        except OSError:
            self.close(reset=False)

    def close(self, reset: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if reset:
            try:
                self.client_sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
            except OSError:
                pass
        for sock in (self.client_sock, self.server_sock):
            # shutdown() before close(): close() alone does not wake a
            # pump thread blocked in recv() on the other side.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A TCP proxy applying a :class:`FaultPlan` to every connection.

    ``upstream`` is the real server's ``(host, port)``; :meth:`start`
    binds the listening side (``port=0`` picks a free one) and returns
    the port clients should dial.  Every injected fault is recorded in
    :attr:`events` as ``(connection index, kind, direction, offset)``.
    """

    def __init__(self, upstream: tuple, plan: Optional[FaultPlan] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.upstream = upstream
        self.plan = plan if plan is not None else FaultPlan.clean()
        self.host = host
        self.port = port
        self.events: list[tuple] = []
        self.connections_seen = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: list[threading.Thread] = []
        self._conns: list[_ProxiedConnection] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> int:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True)
        self._accept_thread.start()
        return self.port

    def stop(self) -> None:
        self._stopping.set()
        listener = self._listener
        self._listener = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []

    def __enter__(self) -> "ChaosProxy":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    # -- internals ---------------------------------------------------------
    def _note(self, index: int, kind: str, direction: str,
              offset: int) -> None:
        with self._lock:
            self.events.append((index, kind, direction, offset))

    def _sleep(self, seconds: float) -> None:
        """Directive sleep, interruptible by :meth:`stop`."""
        self._stopping.wait(seconds)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client_sock, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                index = self.connections_seen
                self.connections_seen += 1
            try:
                server_sock = socket.create_connection(self.upstream,
                                                       timeout=10)
            except OSError:
                try:
                    client_sock.close()
                except OSError:
                    pass
                continue
            for sock in (client_sock, server_sock):
                try:
                    sock.setsockopt(socket.IPPROTO_TCP,
                                    socket.TCP_NODELAY, 1)
                except OSError:
                    pass
            conn = _ProxiedConnection(self, index, client_sock,
                                      server_sock,
                                      self.plan.for_connection(index))
            with self._lock:
                self._conns.append(conn)
            for direction in (UP, DOWN):
                thread = threading.Thread(
                    target=conn.pump, args=(direction,),
                    name=f"chaos-{index}-{direction}", daemon=True)
                thread.start()
                self._threads.append(thread)


# -- process-level faults (crash-only durability harness) -------------------
def tear_tail(path: str, drop_bytes: int) -> int:
    """Truncate ``drop_bytes`` off the end of ``path``; returns new size.

    The deterministic stand-in for "SIGKILL landed between the
    buffered journal append and its fsync": the final record is left
    half-written at an arbitrary byte boundary, exactly the torn tail
    :meth:`~repro.serve.journal.Journal` must truncate — never refuse
    — on the next open.
    """
    size = os.path.getsize(path)
    keep = max(size - max(drop_bytes, 0), 0)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


class ServerProcess:
    """A real ``duel-serve`` subprocess the harness can SIGKILL.

    The in-process :meth:`DuelServer.simulate_crash` is fast and
    deterministic, but only an actual process death proves the
    durability layer end to end — no destructor, ``finally`` or
    daemon thread gets to run.  ``args`` are appended to the base
    ``python -m repro <program args>`` command line (``--serve`` plus
    ``--state-dir`` belong there); stdout is scraped for the
    ``serving on host:port`` announcement.

    One instance manages one *state directory's worth* of server
    lifetimes: :meth:`sigkill` then :meth:`restart` reuses the same
    command line, so recovery runs against exactly the state the
    killed lifetime left behind.
    """

    READY_RE = re.compile(r"serving on [^:]+:(\d+)")

    def __init__(self, args: list, *, timeout: float = 30.0,
                 env: Optional[dict] = None):
        self.args = list(args)
        self.timeout = timeout
        self.env = env
        self.port: Optional[int] = None
        self.proc: Optional[subprocess.Popen] = None
        #: Every line scraped from the current lifetime's stdout.
        self.stdout_lines: list[str] = []
        #: How many lifetimes this state dir has seen.
        self.lifetimes = 0

    def start(self) -> int:
        """Spawn the server; blocks until it announces its port."""
        if self.proc is not None and self.proc.poll() is None:
            raise RuntimeError("server already running")
        self.stdout_lines = []
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=self.env)
        self.lifetimes += 1
        deadline = time.monotonic() + self.timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    "server exited before announcing its port:\n"
                    + "".join(self.stdout_lines))
            self.stdout_lines.append(line)
            match = self.READY_RE.search(line)
            if match:
                self.port = int(match.group(1))
                # Keep draining stdout so the server never blocks on a
                # full pipe.
                threading.Thread(target=self._drain_stdout,
                                 daemon=True).start()
                return self.port
        raise RuntimeError(f"server not ready within {self.timeout}s")

    def _drain_stdout(self) -> None:
        proc = self.proc
        try:
            for line in proc.stdout:
                self.stdout_lines.append(line)
        except (OSError, ValueError):        # pragma: no cover - races
            pass

    def sigkill(self) -> None:
        """SIGKILL the server — no drain, no cleanup, no goodbye."""
        if self.proc is None:
            return
        try:
            self.proc.send_signal(signal.SIGKILL)
        except (OSError, ProcessLookupError):  # pragma: no cover
            pass
        self.proc.wait(timeout=self.timeout)

    def restart(self) -> int:
        """Start a fresh lifetime over the same command line/state dir."""
        if self.proc is not None and self.proc.poll() is None:
            raise RuntimeError("kill the server before restarting it")
        return self.start()

    def terminate(self) -> None:
        """Graceful SIGTERM stop (end-of-test cleanup)."""
        if self.proc is None or self.proc.poll() is not None:
            return
        try:
            self.proc.terminate()
            self.proc.wait(timeout=self.timeout)
        except (OSError, subprocess.TimeoutExpired):
            try:
                self.proc.kill()
                self.proc.wait(timeout=5)
            except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
                pass

    def __enter__(self) -> "ServerProcess":
        if self.proc is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()
