"""Degraded-mode health: a circuit breaker over target faults.

A debugging service whose *target* has started faulting (a crashed
inferior, an unmapped region, a gdb stub gone sideways) should not
keep slamming write queries into it: every side-effecting query costs
a snapshot take/restore against a target that is likely to fault
mid-write anyway.  The :class:`CircuitBreaker` watches terminal
``faulted`` outcomes that are *target* faults (never plain query
errors — a user typo must not degrade the service) and trips the
server into **degraded** mode:

* read-only queries keep flowing — a degraded debugger still answers
  ``x[..100]``;
* side-effecting queries are refused with an explicit
  ``rejected: degraded`` frame (never a hang, never a half-applied
  write against a sick target);
* after ``cooldown`` seconds the breaker goes **half-open**: the next
  write is let through as a probe; success closes the breaker, a
  fresh target fault re-trips it.

:class:`ServerHealth` folds the breaker together with the server's
drain flag into the one state word operators see everywhere —
``/healthz``, the ``stats`` frame, the Prometheus gauges::

    ok        everything normal                (healthz: 200)
    degraded  breaker open, reads only         (healthz: 200 + body)
    draining  shutdown in progress             (healthz: 503)

States are strings on purpose: they travel through JSON frames and
text exposition unmodified.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

#: The three health states, in increasing order of distress.
OK = "ok"
DEGRADED = "degraded"
DRAINING = "draining"

#: Numeric encoding for the ``serve_health`` gauge (dashboards can
#: alert on ``> 0``).
STATE_CODES = {OK: 0, DEGRADED: 1, DRAINING: 2}


class CircuitBreaker:
    """Trip after ``threshold`` target faults within ``window`` seconds.

    Classic three-state breaker (closed / open / half-open) with a
    sliding fault window.  All transitions are lock-protected and
    cheap; ``clock`` is injectable for deterministic tests.

    The breaker never *blocks* anything itself — callers ask
    :meth:`allow_write` before running a side-effecting query and
    report outcomes via :meth:`record_fault` / :meth:`record_ok`.
    """

    def __init__(self, threshold: int = 5, window: float = 30.0,
                 cooldown: float = 10.0, clock=time.monotonic):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._faults: deque[float] = deque()
        self._opened_at: Optional[float] = None
        self._probing = False
        #: Lifetime counters (mirrored into metrics by the server).
        self.trips = 0
        self.rejections = 0

    # -- state -------------------------------------------------------------
    @property
    def open(self) -> bool:
        with self._lock:
            return self._opened_at is not None

    def state(self) -> str:
        """``closed``, ``open`` or ``half-open`` (for diagnostics)."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown:
                return "half-open"
            return "open"

    # -- the write gate ----------------------------------------------------
    def allow_write(self) -> bool:
        """May a side-effecting query run right now?

        Closed: yes.  Open: no, until ``cooldown`` has elapsed.
        Half-open: exactly one caller gets a True (the probe); others
        stay rejected until the probe reports back.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.cooldown:
                self.rejections += 1
                return False
            if self._probing:
                self.rejections += 1
                return False
            self._probing = True
            return True

    # -- outcome reports ---------------------------------------------------
    def record_fault(self) -> bool:
        """A target fault happened; returns True when this one trips
        the breaker (open state entered)."""
        now = self._clock()
        with self._lock:
            if self._opened_at is not None:
                # A faulting probe re-opens the full cooldown window.
                self._opened_at = now
                self._probing = False
                return False
            self._faults.append(now)
            horizon = now - self.window
            while self._faults and self._faults[0] < horizon:
                self._faults.popleft()
            if len(self._faults) >= self.threshold:
                self._opened_at = now
                self._probing = False
                self._faults.clear()
                self.trips += 1
                return True
            return False

    def record_ok(self) -> bool:
        """A write completed cleanly; returns True when this closes a
        half-open breaker (service recovered)."""
        with self._lock:
            if self._opened_at is None:
                return False
            if not self._probing:
                return False
            self._opened_at = None
            self._probing = False
            self._faults.clear()
            return True

    def force_close(self) -> None:
        """Operator reset: forget everything, close the breaker."""
        with self._lock:
            self._opened_at = None
            self._probing = False
            self._faults.clear()


class ServerHealth:
    """The server's one-word health, and how it is computed.

    ``draining`` (set by shutdown) dominates; otherwise the breaker
    decides ``degraded`` vs ``ok``.  :meth:`healthz` renders the
    ``(status code, body)`` pair the ``/healthz`` endpoint serves:
    ``ok`` and ``degraded`` answer 200 (the *process* is alive — a
    degraded debugger must not be restart-looped by its supervisor),
    ``draining`` answers 503 so load balancers stop routing to it.
    """

    def __init__(self, breaker: Optional[CircuitBreaker] = None):
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._draining = threading.Event()
        #: Optional zero-arg callable returning a JSON-able dict of
        #: per-subsystem detail (the server installs its
        #: ``health_detail``).  When set, :meth:`healthz` appends the
        #: dict as a second body line — probes keep matching on the
        #: first-line status word, operators ``curl | tail -1 | jq``.
        self.detail = None

    def set_draining(self) -> None:
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def state(self) -> str:
        if self._draining.is_set():
            return DRAINING
        if self.breaker.open:
            return DEGRADED
        return OK

    def code(self) -> int:
        """The numeric gauge encoding of :meth:`state`."""
        return STATE_CODES[self.state()]

    def healthz(self) -> tuple[int, str]:
        """``(HTTP status, body)`` for the ``/healthz`` endpoint.

        Line 1 is always the plain status word (what load-balancer
        probes match); when a :attr:`detail` provider is installed,
        line 2 is one JSON object of per-subsystem health.
        """
        state = self.state()
        status = 503 if state == DRAINING else 200
        if state == DEGRADED:
            body = (f"{state} (breaker {self.breaker.state()}: "
                    "reads only, writes rejected)\n")
        else:
            body = state + "\n"
        if self.detail is not None:
            try:
                import json
                body += json.dumps(self.detail()) + "\n"
            except Exception:
                pass               # detail must never break the probe
        return status, body
