"""Session multiplexing over one shared target program.

Every connected client gets its own
:class:`~repro.core.session.DuelSession` — and with it a private
alias namespace, governor, and limits — over the *same*
:class:`~repro.target.program.TargetProgram`.  Two hazards follow
from sharing the target, and this module owns both:

**Torn reads.**  The simulator mutates region bytes, heap bookkeeping
and symbol tables in many small steps; a reader racing a writer could
observe half a mutation.  All query execution therefore goes through
a readers–writer lock: read-only queries run concurrently, queries
that can mutate the target (assignments, increments, target calls,
declarations — the same :func:`~repro.core.session._has_side_effects`
predicate the rollback machinery uses) run exclusively.

**Cross-client corruption.**  Even a *successful* write query must
not leak into other clients' reads: the service promises each client
an isolated view of the stopped inferior.  Side-effecting queries get
*snapshot isolation*: under the write lock the manager takes a
:func:`repro.target.snapshot.take` checkpoint, drives the query — the
query's own output sees its effects, exactly like a private copy of
the target — and restores the checkpoint before the lock is
released.  A fault-injected crash mid-write is covered by the same
restore, so one client's disaster is invisible to the rest.

The paper's single-user REPL semantics (writes persist across
queries) remain available in-process; the serve layer deliberately
trades them for isolation, the way a debugging *service* must.

Fault tolerance adds three more responsibilities:

**Crash-only cleanup.**  Every query's lock-and-snapshot state lives
in a :class:`QueryLease` registered with the manager, and *settling*
a lease (restore the snapshot, release the lock) is idempotent —
whoever gets there first wins.  The normal path settles in the
drive's ``finally``; when the server's watchdog declares a worker
lost (wedged in a backend call that ignores cancellation), it settles
the lease on the worker's behalf via :meth:`SessionManager.reclaim`,
so a killed worker can never leak the RW lock or a pending snapshot
restore.  A reclaimed session is *poisoned* — its zombie thread might
still wake inside the shared target — and refuses further queries.

**Session parking.**  A client that vanishes abnormally (network
fault, heartbeat reap) gets its session *parked* for a bounded TTL,
keyed by the resume key issued in ``welcome``; a reconnect presenting
the key re-attaches the same session — aliases, limits, idempotency
cache intact.  Parking is bounded in count and swept by the server's
watchdog, so dead sessions are reliably released.

**Idempotency.**  Each session carries a bounded cache of completed
``idem``-tagged queries; the server consults it before admission so a
retried side-effecting query is replayed from the cache, never
applied twice.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from typing import Callable, Iterator, Optional

from repro.core.session import DuelSession, _has_side_effects
from repro.target import snapshot
from repro.target.interface import SimulatorBackend


class ReadWriteLock:
    """A writer-preferring readers–writer lock.

    Many readers may hold the lock at once; a writer waits for the
    readers to drain and excludes everyone.  Pending writers block new
    readers (writer preference), so a stream of cheap read queries
    cannot starve a write query forever.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    # -- reader side -------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer and not self._waiting_writers,
                timeout)
            if ok:
                self._readers += 1
            return ok

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side -------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            self._waiting_writers += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout)
                if ok:
                    self._writer = True
                return ok
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


#: Completed idempotent results remembered per session (LRU).
IDEM_CACHE_MAX = 16

#: Alias-defining query texts remembered per session for durable
#: replay (recovery re-drives them to rebuild the alias namespace).
ALIAS_TEXTS_MAX = 32

#: Output bytes cached per idempotent result; a replay of a bigger
#: result ships what fits plus a ``replay_truncated`` marker.
IDEM_LINES_BYTES = 1 << 20

#: Sentinel marking an idempotency token whose query is in flight.
IDEM_RUNNING = object()


class ClientSession:
    """One client's private DUEL session over the shared program.

    ``lock`` serializes query execution on the underlying
    :class:`DuelSession` (sessions are not reentrant); ``inflight``
    counts admitted-but-unfinished queries for the per-client
    admission cap.  The session's governor token is the cancellation
    handle ``cancel`` frames and disconnects trip.

    Fault-tolerance state: ``resume_key`` names this session across
    reconnects (returned in ``welcome``, presented in a later
    ``hello``); ``generation`` counts how many conversations have
    attached to it; the idempotency cache lives behind
    :meth:`idem_lookup` / :meth:`idem_start` / :meth:`idem_store`;
    ``poisoned`` flags a session whose worker was force-reclaimed.
    """

    def __init__(self, client_id: str, session: DuelSession,
                 resume_key: Optional[str] = None):
        self.client_id = client_id
        self.session = session
        self.lock = threading.Lock()
        self.inflight = 0
        self.queries = 0
        # Recovery passes the journaled key back in so a session
        # resurrected after a server restart answers to the exact
        # resume key its client already holds.
        self.resume_key = resume_key or secrets.token_hex(16)
        self.generation = 1
        self.poisoned = False
        #: Alias-defining query texts, in definition order (bounded;
        #: recovery re-drives these to rebuild the alias namespace).
        self.alias_texts: list[str] = []
        self._idem_lock = threading.Lock()
        self._idem: OrderedDict[str, object] = OrderedDict()

    def note_alias(self, text: str) -> bool:
        """Remember an alias-defining query text; True when new."""
        if text in self.alias_texts:
            return False
        if len(self.alias_texts) >= ALIAS_TEXTS_MAX:
            self.alias_texts.pop(0)
        self.alias_texts.append(text)
        return True

    @property
    def token(self):
        return self.session.governor.token

    # -- idempotency cache -------------------------------------------------
    def idem_lookup(self, token: str):
        """The cached result dict, :data:`IDEM_RUNNING`, or None."""
        with self._idem_lock:
            found = self._idem.get(token)
            if found is not None and found is not IDEM_RUNNING:
                self._idem.move_to_end(token)
            return found

    def idem_start(self, token: str) -> bool:
        """Claim ``token`` for a fresh run; False when already known."""
        with self._idem_lock:
            if token in self._idem:
                return False
            self._idem[token] = IDEM_RUNNING
            return True

    def idem_store(self, token: str, result: dict) -> None:
        """Cache the terminal ``result`` of a completed idem query."""
        with self._idem_lock:
            self._idem[token] = result
            self._idem.move_to_end(token)
            while len(self._idem) > IDEM_CACHE_MAX:
                oldest = next(iter(self._idem))
                if self._idem[oldest] is IDEM_RUNNING:
                    # Never evict an in-flight claim; drop the next
                    # completed entry instead.
                    for key, value in self._idem.items():
                        if value is not IDEM_RUNNING:
                            del self._idem[key]
                            break
                    else:      # pragma: no cover - all running
                        break
                else:
                    del self._idem[oldest]

    def idem_abandon(self, token: str) -> None:
        """Forget an in-flight claim whose run never finished."""
        with self._idem_lock:
            if self._idem.get(token) is IDEM_RUNNING:
                del self._idem[token]

    def idem_export(self) -> dict:
        """Every *completed* cache entry (checkpoint payload)."""
        with self._idem_lock:
            return {token: result for token, result in self._idem.items()
                    if result is not IDEM_RUNNING}

    def idem_restore(self, entries: dict) -> None:
        """Refill the cache from journaled/checkpointed entries."""
        for token, result in entries.items():
            if isinstance(result, dict):
                self.idem_store(token, result)


class QueryLease:
    """Crash-only record of one query's lock-and-snapshot state.

    Created *after* the RW lock is acquired (and, for writes, the
    snapshot taken); :meth:`settle` undoes both exactly once no matter
    how many parties call it — the driving worker's ``finally``, the
    watchdog reclaiming a lost worker, or both racing.
    """

    __slots__ = ("manager", "client", "kind", "checkpoint",
                 "created_at", "_lock", "_settled", "forced")

    def __init__(self, manager: "SessionManager", client: ClientSession,
                 kind: str, checkpoint=None):
        self.manager = manager
        self.client = client
        self.kind = kind
        self.checkpoint = checkpoint
        self.created_at = time.monotonic()
        self._lock = threading.Lock()
        self._settled = False
        #: True when the settle came from reclaim, not the worker.
        self.forced = False

    def settle(self, forced: bool = False) -> bool:
        """Restore + release, idempotently; True for the first caller."""
        with self._lock:
            if self._settled:
                return False
            self._settled = True
            self.forced = forced
        manager = self.manager
        try:
            if self.checkpoint is not None:
                snapshot.restore(manager.program, self.checkpoint)
                self.client.session.evaluator.invalidate_target_caches()
        finally:
            if self.kind == "write":
                manager._rw.release_write()
            else:
                manager._rw.release_read()
            manager._unregister(self)
        return True

    def commit(self, on_commit=None) -> bool:
        """Keep the write's effects: release *without* restoring.

        The commit-writes counterpart of :meth:`settle` — same
        claim-once discipline (a racing forced settle wins cleanly and
        the commit reports False, so a reclaimed worker can never
        journal a write whose effects were rolled back).  ``on_commit``
        runs while the RW write lock is still held: the journal append
        goes there, making journal order exactly target apply order.
        Nothing needs invalidating — no state was rewound, so every
        session's target-resident caches stay valid.
        """
        with self._lock:
            if self._settled:
                return False
            self._settled = True
        manager = self.manager
        try:
            if on_commit is not None:
                on_commit()
        finally:
            if self.kind == "write":
                manager._rw.release_write()
            else:
                manager._rw.release_read()
            manager._unregister(self)
        return True


class SessionManager:
    """Creates, tracks, and runs per-client sessions over one target.

    ``session_factory`` builds one :class:`DuelSession` per client
    (the default attaches a fresh :class:`SimulatorBackend` to the
    shared program with ``session_kwargs``); ``qlog``, ``recorder``
    and ``metrics`` — when given — are shared by every session, which
    is exactly why those subsystems are lock-guarded.
    """

    #: Most sessions parked for resume at once (oldest evicted).
    PARK_MAX = 64

    def __init__(self, program, *, session_kwargs: Optional[dict] = None,
                 metrics=None, qlog=None, recorder=None, statements=None,
                 session_factory: Optional[Callable[[], DuelSession]] = None,
                 journal=None, commit_writes: bool = False,
                 accesslog=None):
        self.program = program
        self._session_kwargs = dict(session_kwargs or {})
        self._metrics = metrics
        self._qlog = qlog
        self._recorder = recorder
        self._statements = statements
        self._accesslog = accesslog
        self._session_factory = session_factory
        #: The write-ahead :class:`~repro.serve.journal.Journal` (None
        #: when running without ``--state-dir``): session lifecycle,
        #: idempotency entries and committed writes are appended so a
        #: restarted server can rebuild everything this manager holds.
        self.journal = journal
        #: When True, a side-effecting query that drains to ``done``
        #: *keeps* its effects on the shared target (durable REPL
        #: semantics) instead of being rolled back (snapshot
        #: isolation, the default).
        self.commit_writes = commit_writes
        self._rw = ReadWriteLock()
        self._lock = threading.Lock()
        self._sessions: dict[str, ClientSession] = {}
        #: Parked sessions awaiting resume: key -> (expiry, session).
        self._parked: "OrderedDict[str, tuple[float, ClientSession]]" \
            = OrderedDict()
        self._leases: set[QueryLease] = set()
        self._lease_lock = threading.Lock()

    # -- session lifecycle -------------------------------------------------
    def _make_session(self) -> DuelSession:
        if self._session_factory is not None:
            session = self._session_factory()
        else:
            kwargs = dict(self._session_kwargs)
            if self._metrics is not None:
                kwargs.setdefault("metrics", self._metrics)
            session = DuelSession(SimulatorBackend(self.program), **kwargs)
        if self._qlog is not None:
            session.qlog = self._qlog
        if self._recorder is not None:
            session.recorder = self._recorder
        if self._statements is not None:
            session.statements = self._statements
        if self._accesslog is not None:
            session.accesslog = self._accesslog
        return session

    def page_cache_policy(self):
        """The page-cache policy sessions are built with (or None).

        Normalized the same way :class:`~repro.core.session.
        DuelSession` normalizes its ``page_cache`` argument, so the
        health surface reports the policy actual sessions run under.
        Factory-built sessions (tests) report None — the factory owns
        their configuration.
        """
        policy = self._session_kwargs.get("page_cache")
        if isinstance(policy, str):
            from repro.target.pagecache import parse_policy
            policy = None if policy == "off" else parse_policy(policy)
        return policy

    def _journal_append(self, kind: str, **fields) -> None:
        if self.journal is not None:
            self.journal.append(kind, **fields)

    def open(self, client_id: str) -> ClientSession:
        """Create (or return) the client's session."""
        with self._lock:
            found = self._sessions.get(client_id)
            created = found is None
            if created:
                found = ClientSession(client_id, self._make_session())
                self._sessions[client_id] = found
        if created:
            self._journal_append(
                "sess_open", key=found.resume_key, client=client_id,
                limits=dict(found.session.governor.limits))
        return found

    def close(self, client_id: str) -> None:
        """Drop the client's session (its aliases die with it)."""
        with self._lock:
            found = self._sessions.pop(client_id, None)
        if found is not None:
            self._journal_append("sess_close", key=found.resume_key)

    def note_limit(self, client: ClientSession, name: str, value) -> None:
        """Journal a governor limit change (server control op hook)."""
        self._journal_append("sess_limit", key=client.resume_key,
                             name=name, value=value)

    def note_idem(self, client: ClientSession, token: str,
                  result: dict) -> None:
        """Journal a completed idempotency-cache entry."""
        self._journal_append("idem", key=client.resume_key, token=token,
                             result=result)

    def get(self, client_id: str) -> Optional[ClientSession]:
        with self._lock:
            return self._sessions.get(client_id)

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- parking & resume (reconnect support) -------------------------------
    def park(self, client: ClientSession, ttl: float) -> bool:
        """Detach ``client`` but keep it resumable for ``ttl`` seconds.

        Called on *abnormal* disconnect (never on a clean ``bye``);
        bounded by :data:`PARK_MAX` with oldest-first eviction, so a
        reconnect storm cannot hoard sessions.  Poisoned sessions are
        never parked — their state is suspect by definition.
        """
        evicted = []
        with self._lock:
            self._sessions.pop(client.client_id, None)
            if ttl <= 0 or client.poisoned:
                parked = False
            else:
                while len(self._parked) >= self.PARK_MAX:
                    _, (_, oldest) = self._parked.popitem(last=False)
                    evicted.append(oldest)
                self._parked[client.resume_key] = (time.monotonic() + ttl,
                                                   client)
                parked = True
        for oldest in evicted:
            self._journal_append("sess_close", key=oldest.resume_key)
        if parked:
            self._journal_append("sess_park", key=client.resume_key)
        else:
            self._journal_append("sess_close", key=client.resume_key)
        return parked

    def resume(self, resume_key: str,
               client_id: str) -> Optional[ClientSession]:
        """Re-attach a parked session under a new connection id."""
        with self._lock:
            entry = self._parked.pop(resume_key, None)
            if entry is None:
                return None
            expiry, client = entry
            if time.monotonic() > expiry:
                expired = client
            else:
                expired = None
                client.client_id = client_id
                client.generation += 1
                client.inflight = 0
                self._sessions[client_id] = client
        if expired is not None:
            self._journal_append("sess_close", key=expired.resume_key)
            return None
        self._journal_append("sess_resume", key=resume_key,
                             client=client_id)
        return client

    def sweep_parked(self) -> int:
        """Drop parked sessions past their TTL; returns how many."""
        now = time.monotonic()
        with self._lock:
            expired = [key for key, (expiry, _) in self._parked.items()
                       if now > expiry]
            for key in expired:
                del self._parked[key]
        for key in expired:
            self._journal_append("sess_close", key=key)
        return len(expired)

    def parked_count(self) -> int:
        with self._lock:
            return len(self._parked)

    # -- durability (checkpoint export / crash recovery) ---------------------
    def export_state(self) -> list[dict]:
        """Every live session's durable state (checkpoint payload).

        Called by the checkpointer while it holds the RW write lock,
        so no query is mutating limits-affecting state mid-export.
        Poisoned sessions are skipped — their state is suspect by
        definition, exactly as :meth:`park` refuses them.
        """
        with self._lock:
            everyone = list(self._sessions.values()) + \
                [client for _, client in self._parked.values()]
        exported = []
        for client in everyone:
            if client.poisoned:
                continue
            exported.append({
                "key": client.resume_key,
                "client_id": client.client_id,
                "limits": dict(client.session.governor.limits),
                "aliases": list(client.alias_texts),
                "idem": client.idem_export(),
            })
        return exported

    def resurrect(self, entry: dict) -> ClientSession:
        """Rebuild one session from its journaled/checkpointed state.

        Recovery-only: builds a fresh :class:`ClientSession` under the
        *original* resume key with limits and idempotency cache
        restored, and — crucially — with the query log detached, so
        the replay drives recovery performs are never audited as new
        queries (the exactly-once qlog invariant spans the restart).
        The caller replays aliases/writes, then re-attaches auditing
        via :meth:`finish_resurrect` and parks via
        :meth:`adopt_parked`.  Nothing here journals: the records that
        described this session are still in the journal (or covered
        by the checkpoint) until the next checkpoint supersedes them.
        """
        client = ClientSession(entry["client_id"] or "recovered",
                               self._make_session(),
                               resume_key=entry["key"])
        client.session.qlog = None
        client.session.recorder = None
        client.session.statements = None
        client.session.accesslog = None
        governor = client.session.governor
        for name, value in (entry.get("limits") or {}).items():
            try:
                governor.set_limit(name, value)
            except (ValueError, KeyError):
                continue
        client.alias_texts = list(entry.get("aliases") or [])
        client.idem_restore(entry.get("idem") or {})
        return client

    def finish_resurrect(self, client: ClientSession) -> None:
        """Re-attach shared auditing after recovery replay is done."""
        if self._qlog is not None:
            client.session.qlog = self._qlog
        if self._recorder is not None:
            client.session.recorder = self._recorder
        if self._statements is not None:
            client.session.statements = self._statements
        if self._accesslog is not None:
            client.session.accesslog = self._accesslog

    def adopt_parked(self, client: ClientSession, ttl: float) -> bool:
        """Insert a resurrected session directly into the parked table.

        Unlike :meth:`park` this journals nothing — recovery must not
        re-journal state the journal just taught it.
        """
        if ttl <= 0:
            return False
        with self._lock:
            while len(self._parked) >= self.PARK_MAX:
                self._parked.popitem(last=False)
            self._parked[client.resume_key] = (time.monotonic() + ttl,
                                               client)
        return True

    # -- lease bookkeeping (crash-only cleanup) ------------------------------
    def _register(self, lease: QueryLease) -> None:
        with self._lease_lock:
            self._leases.add(lease)

    def _unregister(self, lease: QueryLease) -> None:
        with self._lease_lock:
            self._leases.discard(lease)

    def active_leases(self) -> list[QueryLease]:
        with self._lease_lock:
            return list(self._leases)

    def reclaim(self, client: ClientSession) -> int:
        """Settle every lease ``client`` holds, on its worker's behalf.

        The watchdog's last resort for a worker wedged in a backend
        call that ignores both the cancel token and the async raise:
        restores any pending snapshot, releases the RW lock, and
        poisons the session (the zombie thread may still wake inside
        the shared target, so the session must never run another
        query).  Returns the number of leases actually settled.
        """
        client.poisoned = True
        settled = 0
        for lease in self.active_leases():
            if lease.client is client and lease.settle(forced=True):
                settled += 1
        return settled

    # -- query execution ---------------------------------------------------
    def classify(self, client: ClientSession, text: str) -> bool:
        """True when ``text`` can mutate the target (needs isolation).

        A text that does not compile is classified read-only: the
        drive will surface the parse error itself, and an unparsed
        query cannot write anything.
        """
        try:
            node = client.session.compile(text)
        except Exception:
            return False
        return _has_side_effects(node)

    def run(self, client: ClientSession, text: str,
            on_begin=None, on_lock=None,
            access: bool = False) -> Iterator[tuple]:
        """Drive one query with isolation; yields ``ievents`` events.

        Read-only queries share the target under the read lock;
        side-effecting queries take the write lock, a snapshot, drive
        with their effects visible to themselves, and restore before
        releasing — snapshot isolation.  Both paths hold their
        lock-and-snapshot state in a registered :class:`QueryLease`
        whose idempotent ``settle`` runs in the ``finally`` — and can
        equally be run by :meth:`reclaim` if this worker is lost — so
        a crash, an abandoned generator, or a hard-cancelled thread
        can never leak the lock or a half-mutated target.

        ``on_lock(kind, ms)``, when given, is called once the query
        holds its locks (and, for writes, its isolation snapshot) with
        ``kind`` ``"read"``/``"write"`` and the milliseconds spent
        acquiring — the serve layer's ``session_lock`` span source.
        ``access=True`` forces the memory-access tracer on for this
        query (the ``accesses`` wire op), independent of the shared
        access log's sampling coin.
        """
        if client.poisoned:
            from repro.core.errors import DuelTargetError
            raise DuelTargetError(
                "session poisoned: a previous query's worker was "
                "forcibly reclaimed; reconnect with a fresh session")
        writes = self.classify(client, text)
        lock_t0 = time.monotonic() if on_lock is not None else 0.0
        with client.lock:
            client.queries += 1
            if writes:
                self._rw.acquire_write()
                try:
                    checkpoint = snapshot.take(self.program)
                except BaseException:
                    self._rw.release_write()
                    raise
                lease = QueryLease(self, client, "write", checkpoint)
            else:
                self._rw.acquire_read()
                lease = QueryLease(self, client, "read")
            if on_lock is not None:
                on_lock("write" if writes else "read",
                        (time.monotonic() - lock_t0) * 1000.0)
            self._register(lease)
            terminal = None
            try:
                for event in client.session.ievents(text,
                                                    on_begin=on_begin,
                                                    access=access):
                    if event[0] != "value":
                        terminal = event[0]
                    yield event
            finally:
                committed = False
                if writes and self.commit_writes and terminal == "done":
                    # Durable REPL semantics: a fully drained write
                    # keeps its effects.  The journal append runs
                    # inside commit(), under the still-held write
                    # lock, so journal order is target apply order;
                    # a racing forced settle (worker declared lost)
                    # wins the claim and nothing is journaled.  A
                    # ``truncated`` write still rolls back — a
                    # half-applied effect has no deterministic replay.
                    committed = lease.commit(
                        on_commit=lambda: self._journal_append(
                            "write", key=client.resume_key, text=text,
                            outcome=terminal))
                if not committed:
                    lease.settle()
                if terminal in ("done", "truncated") and ":=" in text:
                    # Remember alias-defining texts (same heuristic
                    # the client's replay uses) so recovery can
                    # rebuild the alias namespace by re-driving them.
                    if client.note_alias(text):
                        self._journal_append("sess_alias",
                                             key=client.resume_key,
                                             text=text)
