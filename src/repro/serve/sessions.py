"""Session multiplexing over one shared target program.

Every connected client gets its own
:class:`~repro.core.session.DuelSession` — and with it a private
alias namespace, governor, and limits — over the *same*
:class:`~repro.target.program.TargetProgram`.  Two hazards follow
from sharing the target, and this module owns both:

**Torn reads.**  The simulator mutates region bytes, heap bookkeeping
and symbol tables in many small steps; a reader racing a writer could
observe half a mutation.  All query execution therefore goes through
a readers–writer lock: read-only queries run concurrently, queries
that can mutate the target (assignments, increments, target calls,
declarations — the same :func:`~repro.core.session._has_side_effects`
predicate the rollback machinery uses) run exclusively.

**Cross-client corruption.**  Even a *successful* write query must
not leak into other clients' reads: the service promises each client
an isolated view of the stopped inferior.  Side-effecting queries get
*snapshot isolation*: under the write lock the manager takes a
:func:`repro.target.snapshot.take` checkpoint, drives the query — the
query's own output sees its effects, exactly like a private copy of
the target — and restores the checkpoint before the lock is
released.  A fault-injected crash mid-write is covered by the same
restore, so one client's disaster is invisible to the rest.

The paper's single-user REPL semantics (writes persist across
queries) remain available in-process; the serve layer deliberately
trades them for isolation, the way a debugging *service* must.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Optional

from repro.core.session import DuelSession, _has_side_effects
from repro.target import snapshot
from repro.target.interface import SimulatorBackend


class ReadWriteLock:
    """A writer-preferring readers–writer lock.

    Many readers may hold the lock at once; a writer waits for the
    readers to drain and excludes everyone.  Pending writers block new
    readers (writer preference), so a stream of cheap read queries
    cannot starve a write query forever.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    # -- reader side -------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer and not self._waiting_writers,
                timeout)
            if ok:
                self._readers += 1
            return ok

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side -------------------------------------------------------
    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        with self._cond:
            self._waiting_writers += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout)
                if ok:
                    self._writer = True
                return ok
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class ClientSession:
    """One client's private DUEL session over the shared program.

    ``lock`` serializes query execution on the underlying
    :class:`DuelSession` (sessions are not reentrant); ``inflight``
    counts admitted-but-unfinished queries for the per-client
    admission cap.  The session's governor token is the cancellation
    handle ``cancel`` frames and disconnects trip.
    """

    def __init__(self, client_id: str, session: DuelSession):
        self.client_id = client_id
        self.session = session
        self.lock = threading.Lock()
        self.inflight = 0
        self.queries = 0

    @property
    def token(self):
        return self.session.governor.token


class SessionManager:
    """Creates, tracks, and runs per-client sessions over one target.

    ``session_factory`` builds one :class:`DuelSession` per client
    (the default attaches a fresh :class:`SimulatorBackend` to the
    shared program with ``session_kwargs``); ``qlog``, ``recorder``
    and ``metrics`` — when given — are shared by every session, which
    is exactly why those subsystems are lock-guarded.
    """

    def __init__(self, program, *, session_kwargs: Optional[dict] = None,
                 metrics=None, qlog=None, recorder=None,
                 session_factory: Optional[Callable[[], DuelSession]] = None):
        self.program = program
        self._session_kwargs = dict(session_kwargs or {})
        self._metrics = metrics
        self._qlog = qlog
        self._recorder = recorder
        self._session_factory = session_factory
        self._rw = ReadWriteLock()
        self._lock = threading.Lock()
        self._sessions: dict[str, ClientSession] = {}

    # -- session lifecycle -------------------------------------------------
    def _make_session(self) -> DuelSession:
        if self._session_factory is not None:
            session = self._session_factory()
        else:
            kwargs = dict(self._session_kwargs)
            if self._metrics is not None:
                kwargs.setdefault("metrics", self._metrics)
            session = DuelSession(SimulatorBackend(self.program), **kwargs)
        if self._qlog is not None:
            session.qlog = self._qlog
        if self._recorder is not None:
            session.recorder = self._recorder
        return session

    def open(self, client_id: str) -> ClientSession:
        """Create (or return) the client's session."""
        with self._lock:
            found = self._sessions.get(client_id)
            if found is None:
                found = ClientSession(client_id, self._make_session())
                self._sessions[client_id] = found
            return found

    def close(self, client_id: str) -> None:
        """Drop the client's session (its aliases die with it)."""
        with self._lock:
            self._sessions.pop(client_id, None)

    def get(self, client_id: str) -> Optional[ClientSession]:
        with self._lock:
            return self._sessions.get(client_id)

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- query execution ---------------------------------------------------
    def classify(self, client: ClientSession, text: str) -> bool:
        """True when ``text`` can mutate the target (needs isolation).

        A text that does not compile is classified read-only: the
        drive will surface the parse error itself, and an unparsed
        query cannot write anything.
        """
        try:
            node = client.session.compile(text)
        except Exception:
            return False
        return _has_side_effects(node)

    def run(self, client: ClientSession, text: str,
            on_begin=None) -> Iterator[tuple]:
        """Drive one query with isolation; yields ``ievents`` events.

        Read-only queries share the target under the read lock;
        side-effecting queries take the write lock, a snapshot, drive
        with their effects visible to themselves, and restore before
        releasing — snapshot isolation, with the restore in a
        ``finally`` so a crash (or an abandoned generator) can never
        leak a half-mutated target.
        """
        writes = self.classify(client, text)
        with client.lock:
            client.queries += 1
            if writes:
                self._rw.acquire_write()
                try:
                    checkpoint = snapshot.take(self.program)
                    try:
                        yield from client.session.ievents(
                            text, on_begin=on_begin)
                    finally:
                        snapshot.restore(self.program, checkpoint)
                        ev = client.session.evaluator
                        ev.invalidate_target_caches()
                finally:
                    self._rw.release_write()
            else:
                self._rw.acquire_read()
                try:
                    yield from client.session.ievents(
                        text, on_begin=on_begin)
                finally:
                    self._rw.release_read()
