"""Blocking client library and ``duel-client`` CLI for the DUEL service.

The library speaks :mod:`repro.serve.protocol` over one TCP
connection::

    from repro.serve.client import DuelClient

    with DuelClient(port=4693) as duel:
        result = duel.duel("x[..100] >? 0")
        for line in result.lines:
            print(line)
        if result.outcome != "done":
            print(result.diagnostic or result.error)

:meth:`DuelClient.duel` blocks until the query's terminal frame; the
lower-level :meth:`start` / :meth:`collect` pair issues a query
without waiting, which is how a second thread (or the CLI's ^C
handler) gets a window to send ``cancel``.  One client object is one
protocol conversation: it is *not* thread-safe for concurrent
queries — open one client per concurrent stream, which is also what
the server's per-client admission cap assumes.

Fault tolerance (PR 6) — :meth:`duel` survives a flaky transport:

* **Retry with backoff.**  A conversation that breaks mid-query
  (reset, timeout, truncated frame) is retried up to
  :attr:`RetryPolicy.retries` times with exponential backoff plus
  jitter; pass a :class:`RetryPolicy` with a seeded ``rng`` and a
  fake ``sleep`` for deterministic tests.
* **Reconnect with resume.**  Every reconnect presents the resume key
  from the last ``welcome``; if the server still holds the parked
  session, aliases, limits and the idempotency cache come back
  intact.  When resume fails (TTL expired), the client replays its
  recorded governor-limit settings and alias-defining queries into
  the fresh session, best effort.
* **Idempotency tokens.**  Side-effecting queries (classified with
  the real parser, client side) are automatically tagged with an
  ``idem`` token, so a retry after an ambiguous disconnect is
  *replayed* from the server's cache (``result.replayed``) rather
  than executed a second time.  Pass ``idem=`` to control the token,
  or construct with ``auto_idem=False`` to opt out.
* **Heartbeats.**  Server ``ping`` frames are answered automatically
  inside every read loop, so a client waiting on a slow query is
  never reaped as dead.

Timeouts: ``connect_timeout`` bounds the dial + handshake,
``op_timeout`` bounds each wait for a server frame (a wedged server
costs a bounded wait, then the retry machinery kicks in).
"""

from __future__ import annotations

import errno
import random
import secrets
import socket
import time
from typing import Callable, Iterator, Optional

from repro.serve import protocol
from repro.serve.protocol import ProtocolError

#: Alias-defining queries remembered for replay into a fresh session.
REPLAY_MAX = 32


class ServeError(Exception):
    """The conversation broke (connection died, protocol violated)."""


class RetryPolicy:
    """Exponential backoff with jitter for reconnect/retry loops.

    ``backoff(attempt)`` (1-based) returns
    ``min(base * factor**(attempt-1), max_backoff)`` scaled by up to
    ``jitter`` of random spread.  ``rng`` and ``sleep`` are
    injectable, so tests can make retries deterministic and
    instantaneous; ``retries=0`` disables retrying entirely.
    """

    def __init__(self, retries: int = 3, base: float = 0.05,
                 factor: float = 2.0, max_backoff: float = 2.0,
                 jitter: float = 0.5, rng=None, sleep=time.sleep):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.base = base
        self.factor = factor
        self.max_backoff = max_backoff
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def backoff(self, attempt: int) -> float:
        raw = min(self.base * (self.factor ** max(attempt - 1, 0)),
                  self.max_backoff)
        return raw * (1.0 + self.jitter * self._rng.random())

    def wait(self, attempt: int) -> None:
        self._sleep(self.backoff(attempt))


class QueryResult:
    """Everything one ``duel`` request produced.

    ``outcome`` is the terminal event (``done`` / ``truncated`` /
    ``cancelled`` / ``faulted`` / ``error`` / ``rejected``);
    ``lines`` are the streamed output lines (partial results included
    on truncation); ``diagnostic`` / ``error`` / ``reason`` carry the
    terminal frame's explanation, ``stats`` the per-query governor
    counters when the server sent them.  ``replayed`` is True when
    the server answered from its idempotency cache instead of
    re-executing (a retried token).

    Observability fields: ``trace_id`` is the wire trace id the server
    echoed (client-supplied or server-assigned — always present on a
    driven query); ``fingerprint`` the statement fingerprint hash when
    the server aggregates statements; ``profile`` the server+engine
    span tree when the query was started with ``profile=True``.
    """

    __slots__ = ("request_id", "outcome", "lines", "values", "kind",
                 "diagnostic", "error", "reason", "stats", "replayed",
                 "trace_id", "fingerprint", "profile")

    def __init__(self, request_id: int, outcome: str, lines: list,
                 frame: dict):
        self.request_id = request_id
        self.outcome = outcome
        self.lines = lines
        self.values = frame.get("values", len(lines))
        self.kind = frame.get("kind")
        self.diagnostic = frame.get("diagnostic")
        self.error = frame.get("error")
        self.reason = frame.get("reason")
        self.stats = frame.get("stats")
        self.replayed = bool(frame.get("replayed"))
        self.trace_id = frame.get("trace")
        self.fingerprint = frame.get("fingerprint")
        self.profile = frame.get("profile")

    @property
    def ok(self) -> bool:
        """True when the query ran to completion (no partials)."""
        return self.outcome == "done"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QueryResult #{self.request_id} {self.outcome} "
                f"{len(self.lines)} lines>")


def classify_writes(text: str) -> bool:
    """True when ``text`` can mutate the target (client-side parse).

    Used to decide which queries get an automatic idempotency token.
    Unparseable texts are tagged too (costs one cache slot, never
    correctness); the server will reject them identically on every
    attempt.
    """
    try:
        from repro.core.parser import parse
        from repro.core.session import _has_side_effects
        return _has_side_effects(parse(text))
    except Exception:
        return True


def _connection_refused(error) -> bool:
    """True when ``error`` is (or wraps) ECONNREFUSED.

    Walks the cause/context chain because the client wraps transport
    failures in :class:`ServeError` before they reach the retry loop.
    """
    seen: set = set()
    while error is not None and id(error) not in seen:
        seen.add(id(error))
        if isinstance(error, ConnectionRefusedError):
            return True
        if isinstance(error, OSError) \
                and error.errno == errno.ECONNREFUSED:
            return True
        error = error.__cause__ or error.__context__
    return False


class DuelClient:
    """A blocking protocol conversation with one ``duel-serve``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 client: Optional[str] = None, timeout: float = 30.0,
                 connect: bool = True,
                 connect_timeout: Optional[float] = None,
                 op_timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 auto_idem: bool = True,
                 restart_window: float = 0.0):
        self.host = host
        self.port = port
        self.client_name = client
        self.timeout = timeout
        self.connect_timeout = (connect_timeout if connect_timeout
                                is not None else timeout)
        self.op_timeout = op_timeout if op_timeout is not None else timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.auto_idem = auto_idem
        #: How long ``duel`` keeps treating ECONNREFUSED as "the
        #: server is restarting, wait for it" instead of charging a
        #: retry.  A durable server (``--state-dir``) comes back with
        #: every parked session intact, so refused dials during its
        #: restart deserve patience, not a spent attempt.  0 = off.
        self.restart_window = restart_window
        self._refused_since: Optional[float] = None
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._next_id = 0
        #: The server's ``welcome`` frame (after :meth:`connect`).
        self.welcome: Optional[dict] = None
        #: True when the last :meth:`connect` resumed a parked session.
        self.resumed = False
        #: Reconnects performed over this client's lifetime.
        self.reconnects = 0
        self._resume_key: Optional[str] = None
        #: Session state replayed into a fresh session when resume
        #: fails: limit settings (name -> value, last write wins) and
        #: alias-defining query texts, in order.
        self._limit_sets: dict = {}
        self._alias_texts: list[str] = []
        if connect:
            self.connect()

    # -- conversation lifecycle -------------------------------------------
    def connect(self) -> dict:
        """Dial, say hello, store and return the ``welcome`` frame.

        Presents the resume key of a previous conversation when there
        is one; check :attr:`resumed` to learn whether the server
        still had the session.
        """
        if self._sock is not None:
            return self.welcome
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.op_timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._send(protocol.hello(self.client_name,
                                  resume=self._resume_key))
        frame = self.read_frame()
        if frame is None or frame.get("ev") == "error":
            detail = frame.get("error") if frame else "connection closed"
            self.close()
            raise ServeError(f"server refused the conversation: {detail}")
        if frame.get("ev") != "welcome":
            self.close()
            raise ServeError(f"expected welcome, got {frame!r}")
        self.welcome = frame
        self.resumed = bool(frame.get("resumed"))
        self._resume_key = frame.get("resume") or self._resume_key
        return frame

    def close(self) -> None:
        """Say ``bye`` (best effort) and drop the connection."""
        if self._sock is None:
            return
        try:
            self._send({"op": "bye"})
        except (OSError, ServeError):
            pass
        self._teardown()

    def _teardown(self) -> None:
        """Drop the transport, keeping resume/replay state."""
        for stream in (self._rfile, self._wfile):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._sock = self._rfile = self._wfile = None

    def _redial(self) -> None:
        """Reconnect after a broken conversation (resume or replay)."""
        had_conversation = self.welcome is not None
        self._teardown()
        self.connect()
        if had_conversation:
            self.reconnects += 1
            if not self.resumed:
                self._replay_state()

    def _replay_state(self) -> None:
        """Re-establish limits and aliases in a fresh session."""
        for name, value in list(self._limit_sets.items()):
            self._control({"op": "limits", "name": name, "value": value},
                          "limits")
        for text in list(self._alias_texts):
            self.collect(self.start(text))

    def __enter__(self) -> "DuelClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------
    def _send(self, frame: dict) -> None:
        if self._wfile is None:
            raise ServeError("not connected")
        try:
            self._wfile.write(protocol.encode(frame))
            self._wfile.flush()
        except OSError as error:
            raise ServeError(f"connection lost: {error}") from error

    def read_frame(self) -> Optional[dict]:
        """The next server frame, or None on EOF.

        Server heartbeat ``ping`` frames are answered (``pong``) and
        swallowed here, so every caller's read loop keeps the
        connection provably alive without handling them itself.
        """
        if self._rfile is None:
            raise ServeError("not connected")
        while True:
            try:
                line = self._rfile.readline(protocol.MAX_FRAME + 2)
            except OSError as error:
                raise ServeError(f"connection lost: {error}") from error
            if not line:
                return None
            try:
                frame = protocol.decode(line)
            except ProtocolError as error:
                raise ServeError(
                    f"unreadable server frame: {error}") from error
            if frame.get("ev") == "ping" and isinstance(
                    frame.get("seq"), int):
                try:
                    self._send({"op": "pong", "seq": frame["seq"]})
                except ServeError:
                    pass
                continue
            return frame

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- queries -----------------------------------------------------------
    def start(self, text: str, idem: Optional[str] = None,
              trace: Optional[str] = None, profile: bool = False) -> int:
        """Issue a ``duel`` request without waiting; returns its id.

        ``trace`` propagates a caller-chosen trace id (the server
        assigns one otherwise and echoes it on every frame);
        ``profile=True`` asks for the full server+engine span tree on
        the terminal frame.
        """
        request_id = self._take_id()
        frame = {"op": "duel", "id": request_id, "text": text}
        if idem is not None:
            frame["idem"] = idem
        if trace is not None:
            frame["trace"] = trace
        if profile:
            frame["profile"] = True
        self._send(frame)
        return request_id

    def collect(self, request_id: int,
                on_line: Optional[Callable[[str], None]] = None
                ) -> QueryResult:
        """Consume frames until ``request_id``'s terminal frame."""
        lines: list[str] = []
        while True:
            frame = self.read_frame()
            if frame is None:
                raise ServeError("connection closed mid-query")
            if frame.get("id") != request_id:
                continue              # a stale reply from a prior query
            ev = frame.get("ev")
            if ev == "value":
                for line in frame.get("lines", ()):
                    lines.append(line)
                    if on_line is not None:
                        on_line(line)
            elif ev in protocol.TERMINAL_EVENTS:
                return QueryResult(request_id, ev, lines, frame)
            elif ev == "cancel":
                continue              # ack of a cancel we sent
            else:
                raise ServeError(f"unexpected frame mid-query: {frame!r}")

    def duel(self, text: str,
             on_line: Optional[Callable[[str], None]] = None,
             idem: Optional[str] = None,
             trace: Optional[str] = None,
             profile: bool = False) -> QueryResult:
        """Run one query to completion (values stream via ``on_line``).

        Resilient: a conversation that breaks mid-query is retried per
        :attr:`retry` (reconnecting — resuming the session when the
        server still holds it).  Side-effecting queries are tagged
        with an idempotency token (``idem``, auto-generated under
        ``auto_idem``), so a retry is replayed from the server's
        cache, never executed twice.  After a reconnect ``on_line``
        may observe some lines a second time; the returned result's
        ``lines`` are authoritative.
        """
        if idem is None and self.auto_idem and classify_writes(text):
            idem = "auto-" + secrets.token_hex(8)
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._redial()
                request_id = self.start(text, idem=idem, trace=trace,
                                        profile=profile)
                result = self.collect(request_id, on_line=on_line)
                self._refused_since = None
            except (ServeError, OSError) as error:
                self._teardown()
                if self.restart_window > 0 \
                        and _connection_refused(error):
                    # A refused dial during the restart window is the
                    # server coming back up, not a spent retry: keep
                    # waiting (bounded by the window) without charging
                    # ``attempt``.
                    now = time.monotonic()
                    if self._refused_since is None:
                        self._refused_since = now
                    if now - self._refused_since <= self.restart_window:
                        self.retry.wait(max(attempt, 1))
                        continue
                self._refused_since = None
                attempt += 1
                if attempt > self.retry.retries:
                    raise ServeError(
                        f"query failed after {attempt} attempt"
                        f"{'s' if attempt != 1 else ''}: {error}"
                    ) from error
                self.retry.wait(attempt)
                continue
            if (result.outcome == "rejected" and result.reason == "busy"
                    and idem is not None
                    and attempt < self.retry.retries):
                # Our previous attempt is still running server-side;
                # back off and re-present the token until its cached
                # result is ready.
                attempt += 1
                self.retry.wait(attempt)
                continue
            self._note_state(text, result)
            return result

    def _note_state(self, text: str, result: QueryResult) -> None:
        """Remember alias definitions for fresh-session replay."""
        if result.outcome in ("done", "truncated") and ":=" in text:
            self._alias_texts.append(text)
            del self._alias_texts[:-REPLAY_MAX]

    def iduel(self, text: str) -> Iterator[str]:
        """Lines of one query, lazily; raises on non-``done`` outcomes
        only for rejections and errors (truncation keeps partials)."""
        result = self.duel(text)
        yield from result.lines
        if result.outcome in ("error", "rejected"):
            raise ServeError(result.error or result.reason or
                             result.outcome)

    def cancel(self, request_id: int) -> None:
        """Trip the server-side cancel token of an in-flight query."""
        self._send({"op": "cancel", "id": self._take_id(),
                    "target": request_id})

    # -- control operations ------------------------------------------------
    def _control(self, frame: dict, expect: str) -> dict:
        request_id = self._take_id()
        frame["id"] = request_id
        self._send(frame)
        while True:
            reply = self.read_frame()
            if reply is None:
                raise ServeError("connection closed mid-operation")
            if reply.get("id") != request_id:
                continue
            if reply.get("ev") in (expect, "error", "rejected"):
                return reply
            raise ServeError(f"unexpected reply: {reply!r}")

    def ping(self) -> bool:
        """A client-initiated liveness probe (True on a pong)."""
        reply = self._control({"op": "ping"}, "pong")
        return reply.get("ev") == "pong"

    def aliases(self) -> dict:
        reply = self._control({"op": "alias"}, "alias")
        if reply["ev"] != "alias":
            raise ServeError(reply.get("error") or reply.get("reason")
                             or "alias listing failed")
        return reply["aliases"]

    def limits(self, name: Optional[str] = None, value=None) -> dict:
        frame: dict = {"op": "limits"}
        if name is not None:
            frame["name"] = name
            frame["value"] = value
        reply = self._control(frame, "limits")
        if reply["ev"] != "limits":
            raise ServeError(reply.get("error") or "limits failed")
        if name is not None:
            self._limit_sets[name] = value
        return reply

    def stats(self) -> dict:
        reply = self._control({"op": "stats"}, "stats")
        if reply["ev"] != "stats":
            raise ServeError(reply.get("error") or "stats failed")
        return reply

    def statements(self, by: str = "total_ms",
                   limit: int = 20) -> dict:
        """The server's statement-statistics table (top fingerprints).

        Returns the whole ``statements`` reply: ``enabled``, ``rows``
        (ordered by ``by`` descending, at most ``limit``), plus the
        table-level entries/capacity/evicted/recorded counters.
        """
        frame: dict = {"op": "statements"}
        if by is not None:
            frame["by"] = by
        if limit is not None:
            frame["limit"] = limit
        reply = self._control(frame, "statements")
        if reply["ev"] != "statements":
            raise ServeError(reply.get("error") or "statements failed")
        return reply

    def health(self) -> dict:
        """Per-subsystem server health (the ``/healthz`` JSON detail)."""
        reply = self._control({"op": "health"}, "health")
        if reply["ev"] != "health":
            raise ServeError(reply.get("error") or "health failed")
        return reply

    def accesses(self, text: str, trace: Optional[str] = None) -> dict:
        """One query's memory-access profile plus prefetch advice.

        Runs ``text`` server-side with the access tracer forced on:
        value frames are suppressed and the single reply carries
        ``outcome`` (the query's terminal verdict), ``values``,
        ``profile`` (the :func:`repro.obs.access.profile_records`
        shape — pattern, stride histogram, page locality) and
        ``advisor`` (the simulated page-cache sweep, best projection
        first).  Raises :class:`ServeError` when the query is
        rejected by admission control or hits a server error.
        """
        request_id = self._take_id()
        frame: dict = {"op": "accesses", "id": request_id, "text": text}
        if trace is not None:
            frame["trace"] = trace
        self._send(frame)
        while True:
            reply = self.read_frame()
            if reply is None:
                raise ServeError("connection closed mid-operation")
            if reply.get("id") != request_id:
                continue
            ev = reply.get("ev")
            if ev == "accesses":
                return reply
            if ev in ("rejected", "error"):
                raise ServeError(reply.get("error")
                                 or reply.get("reason") or ev)
            raise ServeError(f"unexpected reply: {reply!r}")


def main(argv=None) -> int:
    """``duel-client``: a line-oriented console over the service.

    ``--expr`` runs a batch and exits; otherwise lines from stdin are
    queries (``quit`` leaves, ``cancel`` has no meaning here — hit ^C
    during a query to cancel it in place and keep the partial
    output).

    Exit codes (batch mode returns the worst across ``--expr``\\ s):
    0 — every query completed (done / truncated / cancelled);
    1 — usage or protocol error; 2 — the connection could not be
    (re-)established (dial failed, or mid-query retries exhausted);
    3 — a query was rejected by admission control (busy / overloaded /
    degraded / poisoned); 4 — a query faulted or hit an internal
    server error.
    """
    import argparse
    import sys

    class _Parser(argparse.ArgumentParser):
        # argparse's default usage exit is 2, which is this client's
        # "connection failed" code; usage errors are documented as 1.
        def error(self, message):
            self.print_usage(sys.stderr)
            self.exit(1, f"{self.prog}: error: {message}\n")

    parser = _Parser(
        prog="duel-client",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description="console client for a running duel-serve",
        epilog=(
            "exit codes:\n"
            "  0  every query completed (done/truncated/cancelled)\n"
            "  1  usage or protocol error\n"
            "  2  connection could not be (re-)established: dial\n"
            "     failed, or mid-query retries were exhausted\n"
            "  3  a query was rejected by admission control\n"
            "     (busy/overloaded/degraded/poisoned)\n"
            "  4  a query faulted or hit an internal server error\n"))
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--name", default=None,
                        help="client name shown in server logs")
    parser.add_argument("--expr", "-e", action="append", default=[],
                        help="run this query and exit (repeatable)")
    parser.add_argument("--connect-timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="dial + handshake timeout (default 5)")
    parser.add_argument("--op-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-frame wait before the conversation "
                             "is declared dead (default 60)")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="reconnect-and-retry attempts per query, "
                             "with exponential backoff "
                             "(default 3; 0 disables)")
    parser.add_argument("--restart-window", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep retrying refused dials for this long "
                             "(a --state-dir server being restarted "
                             "comes back with sessions intact; "
                             "default 0 = off)")
    ns = parser.parse_args(argv)
    out = sys.stdout

    policy = RetryPolicy(retries=ns.retries)
    try:
        client = DuelClient(host=ns.host, port=ns.port, client=ns.name,
                            connect=False,
                            connect_timeout=ns.connect_timeout,
                            op_timeout=ns.op_timeout, retry=policy,
                            restart_window=ns.restart_window)
        attempt = 0
        deadline = time.monotonic() + max(ns.restart_window, 0.0)
        while True:
            try:
                client.connect()
                break
            except (OSError, ServeError) as error:
                if _connection_refused(error) \
                        and time.monotonic() < deadline:
                    # Dial-time counterpart of the restart window.
                    policy.wait(max(attempt, 1))
                    continue
                attempt += 1
                if attempt > policy.retries:
                    raise
                policy.wait(attempt)
    except (OSError, ServeError) as error:
        out.write(f"error: {error}\n")
        return 2

    def run_one(text: str) -> int:
        try:
            result = client.duel(
                text, on_line=lambda s: out.write(s + "\n"))
        except KeyboardInterrupt:
            # ^C mid-query: cancel in place, keep the partials.
            request_id = client._next_id
            client.cancel(request_id)
            result = client.collect(
                request_id, on_line=lambda s: out.write(s + "\n"))
        if result.outcome in ("truncated", "cancelled"):
            out.write((result.diagnostic or "(stopped)") + "\n")
        elif result.outcome in ("faulted", "error"):
            out.write((result.error or result.outcome) + "\n")
        elif result.outcome == "rejected":
            out.write(f"rejected: {result.reason}\n")
        if result.replayed:
            out.write("(replayed from the idempotency cache)\n")
        if result.outcome in ("done", "truncated", "cancelled"):
            return 0
        if result.outcome == "rejected":
            return 3
        return 4                      # faulted / internal error

    worst = 0
    try:
        if ns.expr:
            for text in ns.expr:
                out.write(f"duel {text}\n")
                worst = max(worst, run_one(text))
            return worst
        if sys.stdin.isatty():  # pragma: no cover - interactive nicety
            out.write(f"connected to {ns.host}:{ns.port} as "
                      f"{client.welcome.get('client')}; "
                      "'quit' to leave\n")
        for raw in sys.stdin:
            line = raw.strip()
            if not line:
                continue
            if line in ("quit", "exit", "q"):
                break
            worst = max(worst, run_one(line))
        return worst
    except KeyboardInterrupt:
        # ^C at the prompt (not mid-query) just leaves.
        out.write("\n")
        return worst
    except (ServeError, OSError) as error:
        out.write(f"error: {error}\n")
        return 2
    finally:
        client.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
