"""Blocking client library and ``duel-client`` CLI for the DUEL service.

The library speaks :mod:`repro.serve.protocol` over one TCP
connection::

    from repro.serve.client import DuelClient

    with DuelClient(port=4693) as duel:
        result = duel.duel("x[..100] >? 0")
        for line in result.lines:
            print(line)
        if result.outcome != "done":
            print(result.diagnostic or result.error)

:meth:`DuelClient.duel` blocks until the query's terminal frame; the
lower-level :meth:`start` / :meth:`collect` pair issues a query
without waiting, which is how a second thread (or the CLI's ^C
handler) gets a window to send ``cancel``.  One client object is one
protocol conversation: it is *not* thread-safe for concurrent
queries — open one client per concurrent stream, which is also what
the server's per-client admission cap assumes.
"""

from __future__ import annotations

import socket
from typing import Callable, Iterator, Optional

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class ServeError(Exception):
    """The conversation broke (connection died, protocol violated)."""


class QueryResult:
    """Everything one ``duel`` request produced.

    ``outcome`` is the terminal event (``done`` / ``truncated`` /
    ``cancelled`` / ``faulted`` / ``error`` / ``rejected``);
    ``lines`` are the streamed output lines (partial results included
    on truncation); ``diagnostic`` / ``error`` / ``reason`` carry the
    terminal frame's explanation, ``stats`` the per-query governor
    counters when the server sent them.
    """

    __slots__ = ("request_id", "outcome", "lines", "values", "kind",
                 "diagnostic", "error", "reason", "stats")

    def __init__(self, request_id: int, outcome: str, lines: list,
                 frame: dict):
        self.request_id = request_id
        self.outcome = outcome
        self.lines = lines
        self.values = frame.get("values", len(lines))
        self.kind = frame.get("kind")
        self.diagnostic = frame.get("diagnostic")
        self.error = frame.get("error")
        self.reason = frame.get("reason")
        self.stats = frame.get("stats")

    @property
    def ok(self) -> bool:
        """True when the query ran to completion (no partials)."""
        return self.outcome == "done"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QueryResult #{self.request_id} {self.outcome} "
                f"{len(self.lines)} lines>")


class DuelClient:
    """A blocking protocol conversation with one ``duel-serve``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 client: Optional[str] = None, timeout: float = 30.0,
                 connect: bool = True):
        self.host = host
        self.port = port
        self.client_name = client
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._next_id = 0
        #: The server's ``welcome`` frame (after :meth:`connect`).
        self.welcome: Optional[dict] = None
        if connect:
            self.connect()

    # -- conversation lifecycle -------------------------------------------
    def connect(self) -> dict:
        """Dial, say hello, store and return the ``welcome`` frame."""
        if self._sock is not None:
            return self.welcome
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._send(protocol.hello(self.client_name))
        frame = self.read_frame()
        if frame is None or frame.get("ev") == "error":
            detail = frame.get("error") if frame else "connection closed"
            self.close()
            raise ServeError(f"server refused the conversation: {detail}")
        if frame.get("ev") != "welcome":
            self.close()
            raise ServeError(f"expected welcome, got {frame!r}")
        self.welcome = frame
        return frame

    def close(self) -> None:
        """Say ``bye`` (best effort) and drop the connection."""
        if self._sock is None:
            return
        try:
            self._send({"op": "bye"})
        except (OSError, ServeError):
            pass
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "DuelClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------
    def _send(self, frame: dict) -> None:
        if self._wfile is None:
            raise ServeError("not connected")
        try:
            self._wfile.write(protocol.encode(frame))
            self._wfile.flush()
        except OSError as error:
            raise ServeError(f"connection lost: {error}") from error

    def read_frame(self) -> Optional[dict]:
        """The next server frame, or None on EOF."""
        if self._rfile is None:
            raise ServeError("not connected")
        try:
            line = self._rfile.readline(protocol.MAX_FRAME + 2)
        except OSError as error:
            raise ServeError(f"connection lost: {error}") from error
        if not line:
            return None
        try:
            return protocol.decode(line)
        except ProtocolError as error:
            raise ServeError(f"unreadable server frame: {error}") from error

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- queries -----------------------------------------------------------
    def start(self, text: str) -> int:
        """Issue a ``duel`` request without waiting; returns its id."""
        request_id = self._take_id()
        self._send({"op": "duel", "id": request_id, "text": text})
        return request_id

    def collect(self, request_id: int,
                on_line: Optional[Callable[[str], None]] = None
                ) -> QueryResult:
        """Consume frames until ``request_id``'s terminal frame."""
        lines: list[str] = []
        while True:
            frame = self.read_frame()
            if frame is None:
                raise ServeError("connection closed mid-query")
            if frame.get("id") != request_id:
                continue              # a stale reply from a prior query
            ev = frame.get("ev")
            if ev == "value":
                for line in frame.get("lines", ()):
                    lines.append(line)
                    if on_line is not None:
                        on_line(line)
            elif ev in protocol.TERMINAL_EVENTS:
                return QueryResult(request_id, ev, lines, frame)
            elif ev == "cancel":
                continue              # ack of a cancel we sent
            else:
                raise ServeError(f"unexpected frame mid-query: {frame!r}")

    def duel(self, text: str,
             on_line: Optional[Callable[[str], None]] = None
             ) -> QueryResult:
        """Run one query to completion (values stream via ``on_line``)."""
        return self.collect(self.start(text), on_line=on_line)

    def iduel(self, text: str) -> Iterator[str]:
        """Lines of one query, lazily; raises on non-``done`` outcomes
        only for rejections and errors (truncation keeps partials)."""
        request_id = self.start(text)
        result = self.collect(request_id)
        yield from result.lines
        if result.outcome in ("error", "rejected"):
            raise ServeError(result.error or result.reason or
                             result.outcome)

    def cancel(self, request_id: int) -> None:
        """Trip the server-side cancel token of an in-flight query."""
        self._send({"op": "cancel", "id": self._take_id(),
                    "target": request_id})

    # -- control operations ------------------------------------------------
    def _control(self, frame: dict, expect: str) -> dict:
        request_id = self._take_id()
        frame["id"] = request_id
        self._send(frame)
        while True:
            reply = self.read_frame()
            if reply is None:
                raise ServeError("connection closed mid-operation")
            if reply.get("id") != request_id:
                continue
            if reply.get("ev") in (expect, "error", "rejected"):
                return reply
            raise ServeError(f"unexpected reply: {reply!r}")

    def aliases(self) -> dict:
        reply = self._control({"op": "alias"}, "alias")
        if reply["ev"] != "alias":
            raise ServeError(reply.get("error") or reply.get("reason")
                             or "alias listing failed")
        return reply["aliases"]

    def limits(self, name: Optional[str] = None, value=None) -> dict:
        frame: dict = {"op": "limits"}
        if name is not None:
            frame["name"] = name
            frame["value"] = value
        reply = self._control(frame, "limits")
        if reply["ev"] != "limits":
            raise ServeError(reply.get("error") or "limits failed")
        return reply

    def stats(self) -> dict:
        reply = self._control({"op": "stats"}, "stats")
        if reply["ev"] != "stats":
            raise ServeError(reply.get("error") or "stats failed")
        return reply


def main(argv=None) -> int:
    """``duel-client``: a line-oriented console over the service.

    ``--expr`` runs a batch and exits; otherwise lines from stdin are
    queries (``quit`` leaves, ``cancel`` has no meaning here — hit ^C
    during a query to cancel it in place and keep the partial
    output).
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="duel-client",
        description="console client for a running duel-serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--name", default=None,
                        help="client name shown in server logs")
    parser.add_argument("--expr", "-e", action="append", default=[],
                        help="run this query and exit (repeatable)")
    ns = parser.parse_args(argv)
    out = sys.stdout

    try:
        client = DuelClient(host=ns.host, port=ns.port, client=ns.name)
    except (OSError, ServeError) as error:
        out.write(f"error: {error}\n")
        return 1

    def run_one(text: str) -> None:
        request_id = client.start(text)
        try:
            result = client.collect(
                request_id, on_line=lambda s: out.write(s + "\n"))
        except KeyboardInterrupt:
            client.cancel(request_id)
            result = client.collect(
                request_id, on_line=lambda s: out.write(s + "\n"))
        if result.outcome in ("truncated", "cancelled"):
            out.write((result.diagnostic or "(stopped)") + "\n")
        elif result.outcome in ("faulted", "error"):
            out.write((result.error or result.outcome) + "\n")
        elif result.outcome == "rejected":
            out.write(f"rejected: {result.reason}\n")

    try:
        if ns.expr:
            for text in ns.expr:
                out.write(f"duel {text}\n")
                run_one(text)
            return 0
        if sys.stdin.isatty():  # pragma: no cover - interactive nicety
            out.write(f"connected to {ns.host}:{ns.port} as "
                      f"{client.welcome.get('client')}; "
                      "'quit' to leave\n")
        for raw in sys.stdin:
            line = raw.strip()
            if not line:
                continue
            if line in ("quit", "exit", "q"):
                break
            run_one(line)
        return 0
    except KeyboardInterrupt:
        # ^C at the prompt (not mid-query) just leaves.
        out.write("\n")
        return 0
    except (ServeError, OSError) as error:
        out.write(f"error: {error}\n")
        return 1
    finally:
        client.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
