"""Crash-only durability: the write-ahead session journal + checkpoints.

PR 6 made the service survive a hostile *network*; this module makes
it survive its own death.  The design is the classical WAL +
checkpoint pair, sized for a debugging service:

**The journal** is an append-only sequence of CRC32-framed records in
segment files under ``<state-dir>/journal/``.  Every record that
matters for recovery is appended *before* the action it describes is
acknowledged to any client:

``sess_open``
    a session was created (resume key, connection id, limits);
``sess_limit`` / ``sess_alias``
    a governor limit was set / an alias-defining query completed
    (recorded as its normalized source, replayed into a fresh session
    at recovery);
``idem``
    a completed idempotency-cache entry (token plus the cached
    terminal result), so a write retried *across a server restart*
    is still answered from the cache, never executed twice;
``sess_park`` / ``sess_resume`` / ``sess_close``
    lifecycle transitions (``sess_close`` is the tombstone: closed
    and expired sessions are not resurrected);
``write``
    one *committed* side-effecting query (normalized source +
    terminal outcome), appended while the target write lock is still
    held, so journal order is exactly target apply order.

Each record is framed ``<u32 length><u32 crc32(payload)><payload>``
with a JSON payload carrying its monotone ``lsn``.  Appends always
flush to the OS (a SIGKILL loses nothing that was flushed); how often
they reach the *disk* is the fsync policy — ``always`` (fsync per
append), ``interval:N`` (at most one fsync per N seconds, the
default), or ``off`` (page cache only — survives SIGKILL, not power
loss).

**Torn tails are normal.**  A crash can land between the buffered
write and the page cache, leaving a half-written final record.
:meth:`Journal.open` scans the last segment, truncates at the first
bad frame, and carries on appending — a torn tail is recovered from,
never a refusal to start.

**Checkpoints** bound replay.  The server's checkpointer periodically
freezes the target (under the same writer-preferring RW lock queries
use), serializes a :class:`~repro.target.snapshot.Snapshot` plus the
session table, writes it atomically (temp + fsync + rename) under
``<state-dir>/checkpoint/``, and deletes journal segments the
checkpoint made redundant.  Recovery is then: load the newest valid
checkpoint, replay journal records with ``lsn`` beyond it — session
records rebuild the parked-session table, ``write`` records re-apply
committed queries to the target in lsn order.

The segment/rotation discipline makes truncation safe: the journal
is rotated *inside* the checkpoint freeze, so every record a new
checkpoint does not cover lives in segments the truncation keeps.
Session records may be covered by both a checkpoint and the surviving
segments; their application is idempotent.  ``write`` records cannot
be (writes run under the same lock the freeze holds), which is what
makes re-applying them exactly-once.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import threading
import time
import zlib
from typing import Callable, Iterator, Optional

#: Record framing: little-endian payload length + CRC32 of the payload.
_FRAME = struct.Struct("<II")

#: Journal record kinds (closed vocabulary, validated on append).
RECORD_KINDS = frozenset(
    {"sess_open", "sess_limit", "sess_alias", "idem",
     "sess_park", "sess_resume", "sess_close", "write"})

#: Default segment rotation threshold, bytes.
SEGMENT_BYTES = 4 << 20

#: Checkpoint file magic (bump on incompatible layout changes).
CHECKPOINT_MAGIC = b"DUELCKPT1\n"


class JournalError(Exception):
    """The journal directory is unusable (I/O or layout trouble)."""


class FsyncPolicy:
    """Parsed ``always`` / ``interval:N`` / ``off`` fsync policy.

    ``due(now)`` answers whether an append should fsync; ``note(now)``
    records that one happened.  ``interval:N`` fsyncs at most once per
    ``N`` seconds *on the append path* (plus always on rotation and
    close), trading a bounded window of power-loss exposure for near
    zero steady-state cost.  A SIGKILL — the crash-only serving
    threat model — never loses flushed-but-unsynced data; only losing
    the whole machine does.
    """

    def __init__(self, mode: str, interval: float = 0.0):
        self.mode = mode
        self.interval = interval

    @classmethod
    def parse(cls, spec: str) -> "FsyncPolicy":
        text = (spec or "off").strip().lower()
        if text == "always":
            return cls("always")
        if text == "off":
            return cls("off")
        if text.startswith("interval:"):
            try:
                interval = float(text.split(":", 1)[1])
            except ValueError:
                raise ValueError(
                    f"bad fsync interval in {spec!r}") from None
            if interval <= 0:
                raise ValueError("fsync interval must be positive")
            return cls("interval", interval)
        raise ValueError(f"unknown fsync policy {spec!r} "
                         "(know: always, interval:N, off)")

    def due(self, now: float, last_sync: float) -> bool:
        if self.mode == "always":
            return True
        if self.mode == "off":
            return False
        return now - last_sync >= self.interval

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.mode == "interval":
            return f"<fsync interval:{self.interval}>"
        return f"<fsync {self.mode}>"


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_segment(path: str) -> tuple[list[tuple[int, dict]], int, bool]:
    """All valid records of one segment file.

    Returns ``(records, good_bytes, torn)`` where ``records`` is a
    list of ``(lsn, record)``, ``good_bytes`` is the offset of the
    first bad (or missing) frame, and ``torn`` flags whether trailing
    bytes past that offset had to be disregarded.  Every failure mode
    — short header, short payload, CRC mismatch, unparseable JSON —
    is treated as the torn tail, not an error: the journal's contract
    is *truncate and carry on*.
    """
    records: list[tuple[int, dict]] = []
    offset = 0
    with open(path, "rb") as handle:
        data = handle.read()
    total = len(data)
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break                      # short payload: torn tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break                      # corrupt frame: torn tail
        try:
            record = json.loads(payload)
            lsn = record["lsn"]
        except (ValueError, KeyError, TypeError):
            break                      # unparseable: torn tail
        records.append((lsn, record))
        offset = end
    return records, offset, offset != total


class Journal:
    """Append-only, CRC32-framed, segment-rotating write-ahead log.

    Thread-safe: appends from connection threads, query workers and
    the checkpointer interleave at record granularity under one lock,
    and the assigned ``lsn``\\ s are globally monotone and in file
    order.  :meth:`poison` makes every further append a silent no-op
    — the in-process stand-in for the process dying, used by the
    chaos harness's simulated crashes so an abandoned server can
    never scribble on a directory its replacement has taken over.
    """

    def __init__(self, directory: str, *,
                 fsync: str = "interval:1.0",
                 segment_bytes: int = SEGMENT_BYTES,
                 sync_hook: Optional[Callable[[], None]] = None):
        self.directory = directory
        self.policy = FsyncPolicy.parse(fsync) \
            if isinstance(fsync, str) else fsync
        self.segment_bytes = segment_bytes
        #: Chaos hook: runs after the buffered write, before fsync —
        #: the "killed between append and fsync" crash point.
        self._sync_hook = sync_hook
        self._lock = threading.Lock()
        self._stream = None
        self._segment_seq = 0
        self._segment_size = 0
        self._last_sync = 0.0
        self._poisoned = False
        self._lsn = 0
        #: Lifetime counters.
        self.appended = 0
        self.fsyncs = 0
        self.rotations = 0
        #: True when opening found (and truncated) a torn tail.
        self.recovered_torn_tail = False
        self._open()

    # -- layout --------------------------------------------------------------
    def _segment_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"wal-{seq:08d}.log")

    def segments(self) -> list[tuple[int, str]]:
        """``(sequence, path)`` of every segment file, ordered."""
        found = []
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        for name in names:
            if name.startswith("wal-") and name.endswith(".log"):
                try:
                    seq = int(name[4:-4])
                except ValueError:
                    continue
                found.append((seq, os.path.join(self.directory, name)))
        return sorted(found)

    def _open(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        segments = self.segments()
        if not segments:
            self._segment_seq = 1
            self._stream = open(self._segment_path(1), "ab")
            self._segment_size = 0
            return
        # Resume appending to the newest segment: find its last good
        # offset (and lsn), truncate any torn tail, carry on.
        for _, path in segments[:-1]:
            records, _, _ = _scan_segment(path)
            if records:
                self._lsn = max(self._lsn, records[-1][0])
        last_seq, last_path = segments[-1]
        records, good, torn = _scan_segment(last_path)
        if records:
            self._lsn = max(self._lsn, records[-1][0])
        if torn:
            self.recovered_torn_tail = True
            with open(last_path, "r+b") as handle:
                handle.truncate(good)
        self._segment_seq = last_seq
        self._stream = open(last_path, "ab")
        self._segment_size = good

    # -- appending -----------------------------------------------------------
    @property
    def lsn(self) -> int:
        """The last assigned log sequence number (0 when empty)."""
        with self._lock:
            return self._lsn

    def append(self, kind: str, **fields) -> int:
        """Append one record; returns its lsn (0 when poisoned).

        The payload is flushed to the OS before returning; whether it
        is fsynced to disk too is the policy's call.  Unknown kinds
        are a programming error and raise.
        """
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown journal record kind {kind!r} "
                             f"(know: {', '.join(sorted(RECORD_KINDS))})")
        with self._lock:
            if self._poisoned or self._stream is None:
                return 0
            self._lsn += 1
            record = {"k": kind, "lsn": self._lsn}
            record.update(fields)
            data = _frame(json.dumps(record,
                                     separators=(",", ":")).encode("utf-8"))
            self._stream.write(data)
            self._stream.flush()
            self.appended += 1
            self._segment_size += len(data)
            if self._sync_hook is not None:
                self._sync_hook()
            now = time.monotonic()
            if self.policy.due(now, self._last_sync):
                self._fsync_locked(now)
            if self._segment_size >= self.segment_bytes:
                self._rotate_locked()
            return self._lsn

    def _fsync_locked(self, now: Optional[float] = None) -> None:
        try:
            os.fsync(self._stream.fileno())
        except (OSError, ValueError):      # pragma: no cover - exotic fs
            pass
        self.fsyncs += 1
        self._last_sync = now if now is not None else time.monotonic()

    def sync(self) -> None:
        """Force an fsync regardless of policy (checkpoint barrier)."""
        with self._lock:
            if self._stream is not None and not self._poisoned:
                self._fsync_locked()

    def _rotate_locked(self) -> None:
        self._fsync_locked()
        self._stream.close()
        self._segment_seq += 1
        self._stream = open(self._segment_path(self._segment_seq), "ab")
        self._segment_size = 0
        self.rotations += 1

    def rotate(self) -> int:
        """Seal the active segment, open a fresh one; returns the lsn.

        The checkpointer calls this *inside* its freeze: every record
        up to the returned lsn lives in sealed segments (candidates
        for truncation once the checkpoint lands); everything after
        goes to the new segment, which truncation never touches.
        """
        with self._lock:
            if self._stream is None or self._poisoned:
                return self._lsn
            self._rotate_locked()
            return self._lsn

    def truncate_sealed(self) -> int:
        """Delete every sealed (non-active) segment; returns how many.

        Only call after a checkpoint covering their records has been
        durably written — that is the whole crash-safety argument.
        """
        with self._lock:
            active = self._segment_seq
        removed = 0
        for seq, path in self.segments():
            if seq >= active:
                continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:                # pragma: no cover - defensive
                pass
        return removed

    # -- reading -------------------------------------------------------------
    def replay(self, after_lsn: int = 0) -> Iterator[tuple[int, dict]]:
        """Yield ``(lsn, record)`` with ``lsn > after_lsn``, in order.

        Reads the segment files directly (safe before serving starts
        or from tests; concurrent appends may or may not be seen).
        Torn tails and corrupt frames end the affected segment's
        stream silently — recovery's contract is "everything up to
        the first bad byte", never a refusal.
        """
        for _, path in self.segments():
            records, _, torn = _scan_segment(path)
            for lsn, record in records:
                if lsn > after_lsn:
                    yield lsn, record
            if torn:
                return        # nothing after a torn tail is trustworthy

    def poison(self) -> None:
        """Make all further appends silent no-ops (simulated crash)."""
        with self._lock:
            self._poisoned = True
            if self._stream is not None:
                try:
                    self._stream.close()
                except OSError:            # pragma: no cover - defensive
                    pass
                self._stream = None

    def close(self) -> None:
        """Flush, fsync and close the active segment."""
        with self._lock:
            if self._stream is None or self._poisoned:
                return
            self._stream.flush()
            self._fsync_locked()
            self._stream.close()
            self._stream = None


# -- the state directory ----------------------------------------------------
class StateStore:
    """Owns a ``--state-dir``: journal segments + checkpoint files.

    Layout (see ``docs/STATE_DIR.md``)::

        <state-dir>/
          journal/wal-00000001.log ...     append-only WAL segments
          checkpoint/ckpt-<lsn>.snap       atomic checkpoint files

    Checkpoints are written temp-file + fsync + rename, so a crash
    mid-checkpoint leaves the previous one intact; older checkpoints
    are pruned only after the new one is durably in place.
    """

    def __init__(self, state_dir: str, *, fsync: str = "interval:1.0",
                 segment_bytes: int = SEGMENT_BYTES,
                 sync_hook: Optional[Callable[[], None]] = None):
        self.state_dir = state_dir
        self.checkpoint_dir = os.path.join(state_dir, "checkpoint")
        try:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            self.journal = Journal(os.path.join(state_dir, "journal"),
                                   fsync=fsync,
                                   segment_bytes=segment_bytes,
                                   sync_hook=sync_hook)
        except OSError as error:
            raise JournalError(
                f"state dir {state_dir!r} unusable: {error}") from error

    # -- checkpoints ---------------------------------------------------------
    def checkpoint_files(self) -> list[tuple[int, str]]:
        """``(lsn, path)`` of every checkpoint file, oldest first."""
        found = []
        try:
            names = os.listdir(self.checkpoint_dir)
        except FileNotFoundError:
            return []
        for name in names:
            if name.startswith("ckpt-") and name.endswith(".snap"):
                try:
                    lsn = int(name[5:-5])
                except ValueError:
                    continue
                found.append((lsn, os.path.join(self.checkpoint_dir, name)))
        return sorted(found)

    def write_checkpoint(self, lsn: int, payload: dict) -> str:
        """Durably write one checkpoint blob; returns its path.

        ``payload`` is pickled (it carries a serialized target
        snapshot and the session table), CRC-framed like a journal
        record, written to a temp file, fsynced, renamed into place —
        and only then are older checkpoints pruned and sealed journal
        segments dropped by the caller.
        """
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        data = CHECKPOINT_MAGIC + _frame(body)
        path = os.path.join(self.checkpoint_dir, f"ckpt-{lsn:012d}.snap")
        temp = path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:                # pragma: no cover - exotic fs
                pass
        os.replace(temp, path)
        self._fsync_dir(self.checkpoint_dir)
        for old_lsn, old_path in self.checkpoint_files():
            if old_path != path:
                try:
                    os.unlink(old_path)
                except OSError:            # pragma: no cover - defensive
                    pass
        return path

    def load_checkpoint(self) -> Optional[tuple[int, dict]]:
        """The newest *valid* checkpoint as ``(lsn, payload)``.

        Tries newest first and falls back on any corruption (bad
        magic, bad CRC, unpicklable body) — a half-written or damaged
        checkpoint is skipped, never fatal.
        """
        for lsn, path in reversed(self.checkpoint_files()):
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
                if not data.startswith(CHECKPOINT_MAGIC):
                    continue
                framed = data[len(CHECKPOINT_MAGIC):]
                length, crc = _FRAME.unpack_from(framed, 0)
                body = framed[_FRAME.size:_FRAME.size + length]
                if len(body) != length or zlib.crc32(body) != crc:
                    continue
                payload = pickle.loads(body)
                if payload.get("lsn") != lsn:
                    continue
                return lsn, payload
            except (OSError, ValueError, KeyError, struct.error,
                    pickle.UnpicklingError, EOFError, AttributeError):
                continue
        return None

    @staticmethod
    def _fsync_dir(path: str) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:                    # pragma: no cover - e.g. win32
            return
        try:
            os.fsync(fd)
        except OSError:                    # pragma: no cover - exotic fs
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        self.journal.close()


# -- recovery folding -------------------------------------------------------
def fold_sessions(state: dict, records) -> tuple[dict, list[dict]]:
    """Fold journal records into a session table + ordered write list.

    ``state`` maps resume key -> session-state dict (``key``,
    ``client_id``, ``limits``, ``aliases``, ``idem``, ``closed``) —
    typically the table a checkpoint restored, empty on cold start.
    Returns the updated table and the ``write`` records in lsn order.
    Pure and idempotent for session records (a record covered by both
    the checkpoint and a surviving segment applies cleanly twice),
    which is exactly the property the rotation-inside-freeze
    discipline needs.

    ``sess_close`` marks the entry closed rather than dropping it: a
    closed session is never resurrected, but its *committed writes*
    outlive it — they are target state, and recovery still needs the
    session's aliases to re-drive them.
    """
    writes: list[dict] = []
    for _, record in records:
        kind = record.get("k")
        key = record.get("key")
        if kind == "write":
            writes.append(record)
            continue
        if key is None:
            continue
        if kind == "sess_open":
            entry = state.setdefault(
                key, {"key": key, "client_id": record.get("client"),
                      "limits": {}, "aliases": [], "idem": {},
                      "closed": False})
            entry["client_id"] = record.get("client",
                                            entry.get("client_id"))
            limits = record.get("limits")
            if isinstance(limits, dict):
                entry["limits"].update(limits)
        elif kind == "sess_limit":
            entry = state.get(key)
            if entry is not None:
                entry["limits"][record.get("name")] = record.get("value")
        elif kind == "sess_alias":
            entry = state.get(key)
            text = record.get("text")
            if entry is not None and isinstance(text, str) \
                    and text not in entry["aliases"]:
                entry["aliases"].append(text)
        elif kind == "idem":
            entry = state.get(key)
            result = record.get("result")
            if entry is not None and isinstance(result, dict):
                entry["idem"][record.get("token")] = result
        elif kind == "sess_resume":
            entry = state.get(key)
            if entry is not None:
                entry["client_id"] = record.get("client",
                                                entry.get("client_id"))
        elif kind == "sess_close":
            entry = state.get(key)
            if entry is not None:
                entry["closed"] = True
        # sess_park carries no state delta: parked sessions are
        # resurrected exactly like active ones (the crash disconnected
        # everybody, so *every* surviving session comes back parked).
    return state, writes
