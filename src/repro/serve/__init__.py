"""``repro.serve``: the concurrent DUEL query service.

The network front end over the whole stack: a versioned JSONL-over-TCP
protocol (:mod:`repro.serve.protocol`), per-client sessions with
snapshot-isolated writes over one shared target
(:mod:`repro.serve.sessions`), a threaded server with bounded-queue
admission control wired into the governor/qlog/metrics/recorder
(:mod:`repro.serve.server`), and a blocking client library plus CLIs
(:mod:`repro.serve.client`)::

    duel-serve program.c --port 4693 --workers 8 --query-log q.jsonl
    duel-client --port 4693 --expr 'x[..100] >? 0'
"""

from repro.serve.client import DuelClient, QueryResult, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import DuelServer
from repro.serve.sessions import SessionManager

__all__ = ["DuelClient", "DuelServer", "PROTOCOL_VERSION",
           "ProtocolError", "QueryResult", "ServeError",
           "SessionManager"]
