"""``repro.serve``: the concurrent DUEL query service.

The network front end over the whole stack: a versioned JSONL-over-TCP
protocol (:mod:`repro.serve.protocol`), per-client sessions with
snapshot-isolated writes over one shared target
(:mod:`repro.serve.sessions`), a threaded server with bounded-queue
admission control wired into the governor/qlog/metrics/recorder
(:mod:`repro.serve.server`), and a blocking client library plus CLIs
(:mod:`repro.serve.client`)::

    duel-serve program.c --port 4693 --workers 8 --query-log q.jsonl
    duel-client --port 4693 --expr 'x[..100] >? 0'

Fault tolerance (PR 6): a deterministic chaos proxy for tests
(:mod:`repro.serve.chaos`), client retry/reconnect/idempotency
(:class:`~repro.serve.client.RetryPolicy`), server heartbeats, a
watchdog with crash-only session reclaim, and degraded-mode health
(:mod:`repro.serve.health`).
"""

from repro.serve.chaos import ChaosProxy, Directive, FaultPlan
from repro.serve.client import (DuelClient, QueryResult, RetryPolicy,
                                ServeError)
from repro.serve.health import CircuitBreaker, ServerHealth
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import DuelServer
from repro.serve.sessions import SessionManager

__all__ = ["ChaosProxy", "CircuitBreaker", "Directive", "DuelClient",
           "DuelServer", "FaultPlan", "PROTOCOL_VERSION",
           "ProtocolError", "QueryResult", "RetryPolicy", "ServeError",
           "ServerHealth", "SessionManager"]
