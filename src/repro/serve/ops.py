"""``duel-top``: a live terminal ops console for a DUEL fleet.

The serve stack already *answers* everything an operator wants to
know — ``stats`` for throughput, ``statements`` for per-query-shape
latency, ``health`` for per-subsystem detail — but answers scattered
across three wire ops are not a picture.  ``duel-top`` polls all
three over one :class:`~repro.serve.client.DuelClient` connection and
renders them as a single refreshing screen, ``top(1)``-style:

* a status header — health word, served/rejected counters, breaker
  state, session-table occupancy, journal position, watchdog
  liveness;
* the top query shapes by total latency (or calls / mean / max via
  ``--by``), straight from the pg_stat_statements-style table;
* a memory-locality panel: the profiled query shapes from the
  statement table (scan pattern, reads per value, accesses per page,
  re-read ratio) plus the server's access-observatory counters;
* a page-cache panel: the configured ``--page-cache`` policy, the
  fleet-wide hit rate and logical-vs-physical read totals, and the
  query shapes the cache is absorbing (per-shape hit rate and
  physical reads per value);
* the slow-query tail: the last queries that tripped ``--slow-ms``,
  each with its trace id so an operator can jump from the console to
  the exported span tree.

No curses, no extra dependencies: the screen redraws with plain ANSI
``clear + home`` escapes, so it works in any terminal and degrades to
sequential frames when piped.  ``--once`` prints a single frame and
exits 0 (healthy/degraded) or 1 (draining / unreachable) — cheap
enough for CI smoke tests and cron probes; ``--once --json`` emits
the same picture as one machine-readable JSON document instead of a
rendered screen, for dashboards and smoke scripts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.obs.statements import ORDERINGS, describe
from repro.serve.client import DuelClient, ServeError

#: ANSI: clear screen, cursor home.  Emitted only when refreshing.
CLEAR = "\x1b[2J\x1b[H"


def _fmt_age(age: Optional[float]) -> str:
    return "never" if age is None else f"{age:.1f}s ago"


def locality_panel(health: dict, statements: dict,
                   limit: int = 8) -> list[str]:
    """The memory-locality panel lines (pure function, test-friendly).

    Built from the statement rows that carry access profiles
    (``profiles > 0``) plus the health reply's access-observatory
    counters; readable even before any query has been profiled.
    """
    lines = []
    accesses = health.get("accesses") or {}
    rows = [row for row in statements.get("rows", [])
            if row.get("profiles")]
    header = f"locality: {accesses.get('served', 0)} accesses op(s)"
    if accesses.get("exported") is not None:
        header += (f", {accesses['exported']} profile(s) exported "
                   f"(1-in-{accesses.get('sample', 1)} sampling)")
    lines.append(header)
    if not rows:
        lines.append("  no profiled shapes yet — run 'accesses <expr>' "
                     "or start the server with --access-trace")
        return lines
    rows.sort(key=lambda r: r.get("reads", 0), reverse=True)
    lines.append(f"  {'pattern':<13}{'rd/val':>8}{'acc/page':>10}"
                 f"{'re-read':>9}{'pages/call':>12}  shape")
    for row in rows[:limit]:
        rpv = row.get("reads_per_value")
        if rpv is None:
            values = row.get("values", 0)
            reads = row.get("reads", 0)
            rpv = round(reads / values, 2) if values else float(reads)
        lines.append(
            f"  {row.get('pattern', '?'):<13}{rpv:>8.1f}"
            f"{row.get('page_locality', 0.0):>10.1f}"
            f"{row.get('reread_ratio', 0.0) * 100:>8.1f}%"
            f"{row.get('pages_per_call', 0.0):>12.1f}  "
            f"{row.get('text', '')}")
    return lines


def cache_panel(health: dict, statements: dict,
                limit: int = 4) -> list[str]:
    """The page-cache panel lines (pure function, test-friendly).

    The health reply's ``cache`` section — policy, fleet-wide hit
    rate, logical vs. physical read totals, prefetch traffic — plus
    the statement shapes that ran cached, so an operator sees at a
    glance which query shapes the cache is (or is not) absorbing.
    """
    cache = health.get("cache") or {}
    policy = cache.get("policy", "off")
    if policy == "off":
        return ["page cache: off (start the server with "
                "--page-cache demand|adaptive)"]
    lines = [f"page cache: {policy}, {cache.get('page_size', '?')}B × "
             f"{cache.get('capacity', '?')} pages — "
             f"{cache.get('hit_rate', 0.0) * 100:.1f}% hits "
             f"({cache.get('hits', 0)} hits / "
             f"{cache.get('misses', 0)} misses, "
             f"{cache.get('evictions', 0)} evictions)"]
    logical = cache.get("logical_reads", 0)
    physical = cache.get("physical_reads", 0)
    saved = (f", {logical / physical:.1f}x fewer reads"
             if physical else "")
    lines.append(f"  reads: {logical} logical → {physical} physical"
                 f"{saved}; prefetched "
                 f"{cache.get('prefetched_bytes', 0)}B "
                 f"({cache.get('prefetch_hits', 0)} used)")
    rows = [row for row in statements.get("rows", [])
            if row.get("cached_calls")]
    if rows:
        rows.sort(key=lambda r: r.get("physical_reads", 0), reverse=True)
        lines.append(f"  {'hit rate':>9}{'rd/val':>8}{'phys/val':>10}"
                     "  shape")
        for row in rows[:limit]:
            values = row.get("values", 0)
            rpv = row.get("reads_per_value")
            if rpv is None:
                reads = row.get("reads", 0)
                rpv = reads / values if values else float(reads)
            ppv = row.get("physical_reads_per_value")
            if ppv is None:
                physical = row.get("physical_reads", 0)
                ppv = physical / values if values else float(physical)
            lines.append(
                f"  {row.get('cache_hit_rate', 0.0) * 100:>8.1f}%"
                f"{rpv:>8.1f}{ppv:>10.1f}  {row.get('text', '')}")
    return lines


def json_doc(health: dict, statements: dict, target: str,
             by: str = "total_ms") -> dict:
    """One machine-readable console frame (``--once --json``).

    The same two wire replies the rendered screen uses, reshaped into
    a single JSON document: server health, the statement table, and a
    ``locality`` section holding the access-observatory counters plus
    only the profiled shapes (the rows a dashboard's locality panel
    actually plots).
    """
    health = {key: value for key, value in health.items()
              if key not in ("ev", "id")}
    statements = {key: value for key, value in statements.items()
                  if key not in ("ev", "id")}
    return {
        "target": target,
        "status": health.get("status", "?"),
        "by": by,
        "health": health,
        "statements": statements,
        "locality": {
            "accesses": health.get("accesses") or {},
            "shapes": [row for row in statements.get("rows", [])
                       if row.get("profiles")],
        },
        "cache": health.get("cache") or {},
    }


def render(health: dict, statements: dict, target: str,
           by: str = "total_ms", slow_limit: int = 8) -> str:
    """One console frame from the two wire replies, as a string.

    Pure function of its inputs — the tests feed it canned dicts and
    assert on the lines, no server required.
    """
    lines = []
    status = health.get("status", "?")
    breaker = health.get("breaker", {})
    sessions = health.get("sessions", {})
    watchdog = health.get("watchdog", {})
    lines.append(f"duel-top — {target} — {status}  "
                 f"(served {health.get('served', 0)}, "
                 f"rejected {health.get('rejected', 0)})")
    lines.append(f"sessions: {sessions.get('active', 0)} active, "
                 f"{sessions.get('parked', 0)} parked, "
                 f"{sessions.get('clients', 0)} clients, "
                 f"{sessions.get('inflight', 0)} in flight, "
                 f"{sessions.get('queued', 0)} queued")
    lines.append(f"breaker:  {breaker.get('state', '?')} "
                 f"(trips {breaker.get('trips', 0)}, "
                 f"rejections {breaker.get('rejections', 0)}, "
                 f"threshold {breaker.get('threshold', '?')}"
                 f"/{breaker.get('window_s', '?')}s)")
    lines.append(f"watchdog: swept "
                 f"{_fmt_age(watchdog.get('last_sweep_age_s'))} "
                 f"(reaped {watchdog.get('reaped', 0)}, "
                 f"hard cancels {watchdog.get('hard_cancels', 0)}, "
                 f"workers lost {watchdog.get('workers_lost', 0)})")
    journal = health.get("journal")
    if journal is not None:
        lines.append(f"journal:  lsn {journal.get('lsn', 0)}, "
                     f"{journal.get('segments', 0)} segment(s), "
                     f"{journal.get('checkpoints', 0)} checkpoint(s)")
    exported = health.get("traces_exported")
    if exported is not None:
        lines.append(f"traces:   {exported} exported")
    lines.append("")
    if statements.get("enabled"):
        state = {key: statements.get(key, 0)
                 for key in ("entries", "capacity", "evicted", "recorded")}
        lines.append(f"top shapes by {by}:")
        lines.extend(describe(statements.get("rows", []), state))
    else:
        lines.append("statement statistics disabled on this server")
    lines.append("")
    lines.extend(locality_panel(health, statements))
    lines.append("")
    lines.extend(cache_panel(health, statements))
    slow = health.get("slow_queries") or []
    lines.append("")
    if slow:
        lines.append(f"slow queries (last {min(len(slow), slow_limit)}):")
        for entry in slow[-slow_limit:]:
            lines.append(f"  {entry.get('wall_ms', 0):>9.1f}ms "
                         f"{entry.get('outcome', '?'):<9} "
                         f"trace={entry.get('trace_id', '?')}  "
                         f"{entry.get('text', '')}")
    else:
        lines.append("slow queries: none")
    return "\n".join(lines) + "\n"


def snapshot(client: DuelClient, by: str = "total_ms",
             limit: int = 20) -> tuple[dict, dict]:
    """Poll the two ops one frame needs (health carries the slow tail)."""
    return client.health(), client.statements(by=by, limit=limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="duel-top",
        description="live ops console for a DUEL query service")
    parser.add_argument("--host", default="127.0.0.1",
                        help="service address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, required=True,
                        help="service port")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh period (default 2.0)")
    parser.add_argument("--by", default="total_ms", choices=ORDERINGS,
                        help="statement table ordering "
                             "(default total_ms)")
    parser.add_argument("--limit", type=int, default=20, metavar="N",
                        help="statement rows shown (default 20)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (for scripts "
                             "and CI; exit 1 when draining or "
                             "unreachable)")
    parser.add_argument("--json", action="store_true",
                        help="with --once: emit one machine-readable "
                             "JSON document (health + statements + "
                             "locality) instead of the rendered screen")
    ns = parser.parse_args(argv)
    if ns.json and not ns.once:
        parser.error("--json requires --once")
    out = sys.stdout
    target = f"{ns.host}:{ns.port}"
    try:
        client = DuelClient(host=ns.host, port=ns.port)
        client.connect()
    except (OSError, ServeError) as error:
        sys.stderr.write(f"duel-top: cannot reach {target}: {error}\n")
        return 1
    try:
        while True:
            try:
                health, statements = snapshot(client, by=ns.by,
                                              limit=ns.limit)
            except (OSError, ServeError) as error:
                sys.stderr.write(f"duel-top: lost {target}: {error}\n")
                return 1
            if ns.json:
                out.write(json.dumps(json_doc(health, statements,
                                              target, by=ns.by)) + "\n")
                return 1 if health.get("status") == "draining" else 0
            frame = render(health, statements, target, by=ns.by)
            if ns.once:
                out.write(frame)
                return 1 if health.get("status") == "draining" else 0
            out.write(CLEAR + frame)
            out.flush()
            time.sleep(ns.interval)
    except KeyboardInterrupt:     # pragma: no cover - interactive exit
        return 0
    finally:
        try:
            client.close()
        except OSError:           # pragma: no cover - teardown race
            pass


if __name__ == "__main__":        # pragma: no cover
    raise SystemExit(main())
