"""The DUEL query service wire protocol: versioned JSONL over TCP.

Hanson's sequel to the paper (*A Machine-Independent Debugger —
Revisited*, MSR-TR-99-4) splits the debugger into a client speaking a
small wire protocol to a "nub" owning the target.  ``repro.serve``
makes the same cut one level up: the server owns the target program
and the per-client :class:`~repro.core.session.DuelSession`\\ s, and
clients speak this protocol — one JSON object per ``\\n``-terminated
line, both directions, UTF-8.

Client → server frames (``op`` selects the operation; every frame
except ``hello``/``bye`` carries a client-chosen ``id`` echoed on all
responses):

``{"op": "hello", "version": 1, "client": "ana"}``
    must be the first frame; negotiates the protocol version;
``{"op": "duel", "id": N, "text": "x[..100] >? 0"}``
    evaluate one DUEL query (the ``duel`` command over the wire);
``{"op": "alias", "id": N}``
    list this client's debugger aliases (``x := ...``);
``{"op": "limits", "id": N[, "name": "steps", "value": 20000]}``
    show — or, with ``name``/``value``, set — this client's governor
    limits (``value: null`` disables one);
``{"op": "stats", "id": N}``
    last-query stats plus server admission counters;
``{"op": "cancel", "id": N, "target": M}``
    trip the cancel token of this client's in-flight query ``M``;
``{"op": "bye"}``
    close the conversation (the server answers ``bye`` and hangs up).

Server → client frames (``ev`` tags the event):

``{"ev": "welcome", "version": 1, "server": ..., "client": ...}``
    the ``hello`` reply;
``{"ev": "value", "id": N, "lines": [...]}``
    a batch of output lines of query ``N``, streamed in production
    order (batched — ``CHUNK`` lines per frame — so a P3-sized result
    does not pay one syscall per value);
``{"ev": "done" | "truncated" | "cancelled" | "faulted" | "error",
"id": N, "values": ..., ...}``
    exactly one terminal frame per accepted query, mirroring the
    query log's verdicts (``done`` = drained; ``truncated`` /
    ``cancelled`` carry the paper-style ``diagnostic`` line and
    governor verdict ``kind``; ``faulted`` / ``error`` carry the
    error text);
``{"ev": "rejected", "id": N, "reason": "overloaded" | "busy" | ...}``
    admission control refused the query — explicit backpressure, the
    query never ran;
``{"ev": "alias" | "limits" | "stats", "id": N, ...}``
    control-operation replies;
``{"ev": "bye"}``
    goodbye (also sent unsolicited when the server drains for
    shutdown, with a ``reason``).

Framing discipline: a frame is one line, at most :data:`MAX_FRAME`
bytes; anything unparsable or oversized raises
:class:`ProtocolError`, which the server answers with a terminal
``error`` frame before dropping the connection — a misbehaving client
can never wedge a worker.
"""

from __future__ import annotations

import json
from typing import Optional

#: Protocol version spoken by this module (bump on breaking changes).
PROTOCOL_VERSION = 1

#: Hard cap on one frame's encoded size, bytes (1 MiB).
MAX_FRAME = 1 << 20

#: Output lines batched per ``value`` frame.
CHUNK = 64

#: Byte budget per ``value`` frame (flush early when lines are fat).
CHUNK_BYTES = 256 << 10

#: Largest single output line shipped intact; longer ones are clipped
#: (a cancelled constants-only runaway can join megabytes into one
#: display line — the wire stays bounded regardless).
MAX_LINE = MAX_FRAME - 4096

#: Every client→server operation.
REQUEST_OPS = frozenset(
    {"hello", "duel", "alias", "limits", "stats", "cancel", "bye"})

#: Terminal events of a ``duel`` request (exactly one per query).
TERMINAL_EVENTS = frozenset(
    {"done", "truncated", "cancelled", "faulted", "error", "rejected"})

#: Request ops that must carry an integer ``id``.
_NEEDS_ID = frozenset({"duel", "alias", "limits", "stats", "cancel"})


class ProtocolError(Exception):
    """A frame violated the protocol (bad JSON, shape, or size)."""


# -- framing ---------------------------------------------------------------
def encode(frame: dict) -> bytes:
    """One frame as a compact JSONL line (UTF-8, size-checked)."""
    data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the "
                            f"{MAX_FRAME}-byte limit")
    return data


def decode(line: bytes) -> dict:
    """Parse one received line into a frame dict (strictly an object)."""
    if len(line) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds the "
                            f"{MAX_FRAME}-byte limit")
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame is not JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    return frame


def read_frames(stream):
    """Yield frames from a binary line stream until EOF.

    ``stream`` is anything with ``readline`` (a ``socket.makefile``);
    blank lines are ignored (keep-alive friendly), malformed lines
    raise :class:`ProtocolError` with the offending prefix.
    """
    while True:
        line = stream.readline(MAX_FRAME + 2)
        if not line:
            return
        if line.strip() == b"":
            continue
        if not line.endswith(b"\n") and len(line) > MAX_FRAME:
            raise ProtocolError("unterminated oversized frame")
        yield decode(line)


# -- request validation ----------------------------------------------------
def validate_request(frame: dict) -> str:
    """Check one client frame's shape; returns its ``op``.

    Raises :class:`ProtocolError` on an unknown or malformed request,
    with a message safe to echo back to the client.
    """
    op = frame.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (know: {', '.join(sorted(REQUEST_OPS))})")
    if op in _NEEDS_ID and not isinstance(frame.get("id"), int):
        raise ProtocolError(f"op {op!r} requires an integer 'id'")
    if op == "duel" and not isinstance(frame.get("text"), str):
        raise ProtocolError("op 'duel' requires a string 'text'")
    if op == "cancel" and not isinstance(frame.get("target"), int):
        raise ProtocolError("op 'cancel' requires an integer 'target'")
    if op == "hello":
        version = frame.get("version")
        if not isinstance(version, int):
            raise ProtocolError("op 'hello' requires an integer 'version'")
    if op == "limits" and "name" in frame:
        if not isinstance(frame["name"], str):
            raise ProtocolError("limits 'name' must be a string")
    return op


# -- frame builders --------------------------------------------------------
def hello(client: Optional[str] = None,
          version: int = PROTOCOL_VERSION) -> dict:
    frame = {"op": "hello", "version": version}
    if client is not None:
        frame["client"] = client
    return frame


def welcome(client: str, server: str = "duel-serve",
            version: int = PROTOCOL_VERSION, **extra) -> dict:
    frame = {"ev": "welcome", "version": version, "server": server,
             "client": client}
    frame.update(extra)
    return frame


def clip_line(line: str) -> str:
    """``line`` bounded to :data:`MAX_LINE` encoded bytes."""
    data = line.encode("utf-8")
    if len(data) <= MAX_LINE:
        return line
    keep = data[:MAX_LINE // 2].decode("utf-8", "ignore")
    return f"{keep} ... (line clipped: {len(data)} bytes)"


def value_frame(request_id: int, lines: list) -> dict:
    return {"ev": "value", "id": request_id,
            "lines": [clip_line(line) for line in lines]}


def terminal(request_id: int, outcome: str, info: dict) -> dict:
    """A terminal frame from one :meth:`DuelSession.ievents` payload."""
    if outcome not in TERMINAL_EVENTS:
        raise ProtocolError(f"unknown terminal outcome {outcome!r}")
    frame = {"ev": outcome, "id": request_id,
             "values": info.get("values", 0)}
    for key in ("kind", "diagnostic", "error", "error_type", "stats"):
        if key in info:
            frame[key] = info[key]
    return frame


def rejected(request_id: int, reason: str, **extra) -> dict:
    frame = {"ev": "rejected", "id": request_id, "reason": reason}
    frame.update(extra)
    return frame
