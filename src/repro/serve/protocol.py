"""The DUEL query service wire protocol: versioned JSONL over TCP.

Hanson's sequel to the paper (*A Machine-Independent Debugger —
Revisited*, MSR-TR-99-4) splits the debugger into a client speaking a
small wire protocol to a "nub" owning the target.  ``repro.serve``
makes the same cut one level up: the server owns the target program
and the per-client :class:`~repro.core.session.DuelSession`\\ s, and
clients speak this protocol — one JSON object per ``\\n``-terminated
line, both directions, UTF-8.

Client → server frames (``op`` selects the operation; every frame
except ``hello``/``bye`` carries a client-chosen ``id`` echoed on all
responses):

``{"op": "hello", "version": 1, "client": "ana"}``
    must be the first frame; negotiates the protocol version;
``{"op": "duel", "id": N, "text": "x[..100] >? 0"}``
    evaluate one DUEL query (the ``duel`` command over the wire);
``{"op": "alias", "id": N}``
    list this client's debugger aliases (``x := ...``);
``{"op": "limits", "id": N[, "name": "steps", "value": 20000]}``
    show — or, with ``name``/``value``, set — this client's governor
    limits (``value: null`` disables one);
``{"op": "stats", "id": N}``
    last-query stats plus server admission counters;
``{"op": "cancel", "id": N, "target": M}``
    trip the cancel token of this client's in-flight query ``M``;
``{"op": "ping", "id": N}`` / ``{"op": "pong", "seq": K}``
    client-initiated liveness probe (answered ``pong``) and the
    answer to a server-initiated ``ping`` (heartbeats — see below);
``{"op": "bye"}``
    close the conversation (the server answers ``bye`` and hangs up).

Fault-tolerance fields (all optional, all version 1):

* ``hello`` may carry ``"resume": "<key>"`` — the resume key of a
  previous conversation; if the server still holds that session
  (bounded parking window), the reconnect re-attaches it, aliases,
  limits and idempotency cache intact, and ``welcome`` says
  ``"resumed": true``;
* ``duel`` may carry ``"idem": "<token>"`` — a client-chosen
  idempotency token.  A retried ``duel`` with a token the session has
  already completed is *not* re-executed: the cached terminal result
  is replayed (``"replayed": true`` on the terminal frame), so a
  retry after an ambiguous disconnect can never apply a
  side-effecting query twice.

Observability fields and ops (all optional, all version 1):

* ``duel`` may carry ``"trace": "<id>"`` — a client-generated trace
  id (printable, ≤ :data:`TRACE_ID_MAX` chars).  The server assigns
  one when absent and echoes the id as ``"trace"`` on **every** frame
  it sends for that request (values, terminal, rejections), so a
  client can correlate its latency with the server's exported span
  tree (:mod:`repro.obs.reqtrace`);
* ``duel`` may carry ``"profile": true`` — run the query traced and
  embed the full client-to-target profile (server phase spans plus
  engine per-AST-node spans) as ``"profile"`` on the terminal frame —
  ``explain`` over the wire;
* ``{"op": "statements", "id": N[, "by": "total_ms", "limit": 10]}``
    the statement-statistics table: top query shapes by latency or
    call count (``{"ev": "statements", "id": N, "rows": [...]}``);
* ``{"op": "health", "id": N}``
    per-subsystem health detail — breaker window, journal position,
    session counts, watchdog age, slow-query tail (``{"ev":
    "health", "id": N, ...}``);
* ``{"op": "accesses", "id": N, "text": "x[..100] >? 0"}``
    evaluate one query with the memory-access tracer forced on and
    return its locality profile instead of its values: the query runs
    under full admission control like ``duel`` but value frames are
    suppressed; the single terminal frame is ``{"ev": "accesses",
    "id": N, "outcome": ..., "values": ..., "profile": {...},
    "advisor": [...]}`` (:mod:`repro.obs.access`) — or the usual
    ``rejected``/``error`` frame when the query never ran.

Server → client frames (``ev`` tags the event):

``{"ev": "welcome", "version": 1, "server": ..., "client": ...}``
    the ``hello`` reply;
``{"ev": "value", "id": N, "lines": [...]}``
    a batch of output lines of query ``N``, streamed in production
    order (batched — ``CHUNK`` lines per frame — so a P3-sized result
    does not pay one syscall per value);
``{"ev": "done" | "truncated" | "cancelled" | "faulted" | "error",
"id": N, "values": ..., ...}``
    exactly one terminal frame per accepted query, mirroring the
    query log's verdicts (``done`` = drained; ``truncated`` /
    ``cancelled`` carry the paper-style ``diagnostic`` line and
    governor verdict ``kind``; ``faulted`` / ``error`` carry the
    error text);
``{"ev": "rejected", "id": N, "reason": "overloaded" | "busy" | ...}``
    admission control refused the query — explicit backpressure, the
    query never ran;
``{"ev": "alias" | "limits" | "stats", "id": N, ...}``
    control-operation replies;
``{"ev": "pong", "id": N}`` / ``{"ev": "ping", "seq": K}``
    the ``ping`` reply, and the server's heartbeat probe (clients
    answer ``{"op": "pong", "seq": K}``; *any* inbound frame counts
    as proof of life, so a pong racing a query frame is fine);
``{"ev": "bye"}``
    goodbye (also sent unsolicited when the server drains for
    shutdown, with a ``reason``).

Framing discipline: a frame is one line, at most :data:`MAX_FRAME`
bytes.  The server reads through
:func:`read_frames_budgeted`: each malformed line is answered with a
structured ``error`` frame carrying the running ``malformed`` count
and the connection's ``budget``; past the budget (or on an
unrecoverable framing violation — an unterminated oversized line that
cannot be resynchronized) the connection is dropped.  A misbehaving
client can never wedge a worker, and a *briefly* garbled one (a proxy
hiccup, a truncated retry) gets a diagnosis instead of a hangup.
"""

from __future__ import annotations

import json
from typing import Optional

#: Protocol version spoken by this module (bump on breaking changes).
PROTOCOL_VERSION = 1

#: Hard cap on one frame's encoded size, bytes (1 MiB).
MAX_FRAME = 1 << 20

#: Output lines batched per ``value`` frame.
CHUNK = 64

#: Byte budget per ``value`` frame (flush early when lines are fat).
CHUNK_BYTES = 256 << 10

#: Largest single output line shipped intact; longer ones are clipped
#: (a cancelled constants-only runaway can join megabytes into one
#: display line — the wire stays bounded regardless).
MAX_LINE = MAX_FRAME - 4096

#: Every client→server operation.
REQUEST_OPS = frozenset(
    {"hello", "duel", "alias", "limits", "stats", "cancel",
     "ping", "pong", "bye", "statements", "health", "accesses"})

#: Terminal events of a ``duel`` request (exactly one per query).
TERMINAL_EVENTS = frozenset(
    {"done", "truncated", "cancelled", "faulted", "error", "rejected"})

#: Request ops that must carry an integer ``id``.
_NEEDS_ID = frozenset({"duel", "alias", "limits", "stats", "cancel",
                       "ping", "statements", "health", "accesses"})

#: Longest ``trace`` id accepted on a ``duel`` frame (mirrors
#: :data:`repro.obs.reqtrace.TRACE_ID_MAX`; duplicated so the wire
#: layer stays importable without the obs stack).
TRACE_ID_MAX = 128

#: Snapshot orderings the ``statements`` op accepts (mirrors
#: :data:`repro.obs.statements.ORDERINGS`).
STATEMENT_ORDERINGS = ("total_ms", "calls", "mean_ms", "max_ms",
                       "reads", "reads_per_value", "physical_reads")

#: Malformed frames tolerated per connection before hanging up.
MALFORMED_BUDGET = 3

#: Bytes skipped while resynchronizing past an oversized line before
#: the connection is declared unrecoverable (a peer streaming an
#: endless unterminated line must not pin the reader forever).
MAX_RESYNC = 8 * MAX_FRAME


class ProtocolError(Exception):
    """A frame violated the protocol (bad JSON, shape, or size)."""


class FatalProtocolError(ProtocolError):
    """A framing violation the reader cannot resynchronize past."""


# -- framing ---------------------------------------------------------------
def encode(frame: dict) -> bytes:
    """One frame as a compact JSONL line (UTF-8, size-checked)."""
    data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the "
                            f"{MAX_FRAME}-byte limit")
    return data


def decode(line: bytes) -> dict:
    """Parse one received line into a frame dict (strictly an object)."""
    if len(line) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds the "
                            f"{MAX_FRAME}-byte limit")
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame is not JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    return frame


def read_frames(stream):
    """Yield frames from a binary line stream until EOF.

    ``stream`` is anything with ``readline`` (a ``socket.makefile``);
    blank lines are ignored (keep-alive friendly), malformed lines
    raise :class:`ProtocolError` with the offending prefix.
    """
    while True:
        line = stream.readline(MAX_FRAME + 2)
        if not line:
            return
        if line.strip() == b"":
            continue
        if not line.endswith(b"\n") and len(line) > MAX_FRAME:
            raise ProtocolError("unterminated oversized frame")
        yield decode(line)


def read_frames_budgeted(stream):
    """Yield frames *or* :class:`ProtocolError` instances until EOF.

    The lenient reader behind the server's per-connection
    malformed-frame budget: a bad line (broken JSON, a non-object, an
    oversized-but-terminated frame) is yielded as the
    :class:`ProtocolError` describing it and reading continues on the
    next line, so the caller can answer with a structured ``error``
    frame and charge the budget instead of hanging up on the first
    offence.  Only :class:`FatalProtocolError` is *raised*: an
    unterminated oversized line means the byte stream has lost frame
    alignment; the reader skips ahead to the next newline (at most
    :data:`MAX_RESYNC` bytes) to try to resynchronize, and gives up —
    raising — when no newline appears within that budget.

    Note that a yielded error covers only the framing layer; callers
    still run :func:`validate_request` on yielded dicts and may treat
    its failures as budget charges too.
    """
    while True:
        line = stream.readline(MAX_FRAME + 2)
        if not line:
            return
        if line.strip() == b"":
            continue
        if not line.endswith(b"\n") and len(line) > MAX_FRAME:
            # Mid-line: resynchronize to the next newline (bounded).
            skipped = len(line)
            while True:
                chunk = stream.readline(MAX_FRAME + 2)
                if not chunk:
                    return
                skipped += len(chunk)
                if chunk.endswith(b"\n"):
                    break
                if skipped > MAX_RESYNC:
                    raise FatalProtocolError(
                        f"unterminated frame ran past {MAX_RESYNC} "
                        "bytes without a newline")
            yield ProtocolError(
                f"oversized frame ({skipped} bytes > {MAX_FRAME})")
            continue
        try:
            yield decode(line)
        except ProtocolError as error:
            yield error


# -- request validation ----------------------------------------------------
def validate_request(frame: dict) -> str:
    """Check one client frame's shape; returns its ``op``.

    Raises :class:`ProtocolError` on an unknown or malformed request,
    with a message safe to echo back to the client.
    """
    op = frame.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (know: {', '.join(sorted(REQUEST_OPS))})")
    if op in _NEEDS_ID and not isinstance(frame.get("id"), int):
        raise ProtocolError(f"op {op!r} requires an integer 'id'")
    if op == "duel":
        if not isinstance(frame.get("text"), str):
            raise ProtocolError("op 'duel' requires a string 'text'")
        if "idem" in frame and not isinstance(frame["idem"], str):
            raise ProtocolError("duel 'idem' must be a string")
        if "trace" in frame:
            trace = frame["trace"]
            if not isinstance(trace, str) or not trace \
                    or len(trace) > TRACE_ID_MAX \
                    or not all(33 <= ord(ch) < 127 for ch in trace):
                raise ProtocolError(
                    "duel 'trace' must be a non-empty printable string "
                    f"of at most {TRACE_ID_MAX} characters")
        if "profile" in frame and not isinstance(frame["profile"], bool):
            raise ProtocolError("duel 'profile' must be a boolean")
    if op == "accesses":
        if not isinstance(frame.get("text"), str):
            raise ProtocolError("op 'accesses' requires a string 'text'")
        if "trace" in frame:
            trace = frame["trace"]
            if not isinstance(trace, str) or not trace \
                    or len(trace) > TRACE_ID_MAX \
                    or not all(33 <= ord(ch) < 127 for ch in trace):
                raise ProtocolError(
                    "accesses 'trace' must be a non-empty printable "
                    f"string of at most {TRACE_ID_MAX} characters")
    if op == "statements":
        if "by" in frame and frame["by"] not in STATEMENT_ORDERINGS:
            raise ProtocolError(
                "statements 'by' must be one of "
                + ", ".join(STATEMENT_ORDERINGS))
        if "limit" in frame and (not isinstance(frame["limit"], int)
                                 or frame["limit"] < 1):
            raise ProtocolError(
                "statements 'limit' must be a positive integer")
    if op == "cancel" and not isinstance(frame.get("target"), int):
        raise ProtocolError("op 'cancel' requires an integer 'target'")
    if op == "pong" and not isinstance(frame.get("seq"), int):
        raise ProtocolError("op 'pong' requires an integer 'seq'")
    if op == "hello":
        version = frame.get("version")
        if not isinstance(version, int):
            raise ProtocolError("op 'hello' requires an integer 'version'")
        if "resume" in frame and not isinstance(frame["resume"], str):
            raise ProtocolError("hello 'resume' must be a string")
    if op == "limits" and "name" in frame:
        if not isinstance(frame["name"], str):
            raise ProtocolError("limits 'name' must be a string")
    return op


# -- frame builders --------------------------------------------------------
def hello(client: Optional[str] = None,
          version: int = PROTOCOL_VERSION,
          resume: Optional[str] = None) -> dict:
    frame = {"op": "hello", "version": version}
    if client is not None:
        frame["client"] = client
    if resume is not None:
        frame["resume"] = resume
    return frame


def welcome(client: str, server: str = "duel-serve",
            version: int = PROTOCOL_VERSION, **extra) -> dict:
    frame = {"ev": "welcome", "version": version, "server": server,
             "client": client}
    frame.update(extra)
    return frame


def clip_line(line: str) -> str:
    """``line`` bounded to :data:`MAX_LINE` encoded bytes."""
    data = line.encode("utf-8")
    if len(data) <= MAX_LINE:
        return line
    keep = data[:MAX_LINE // 2].decode("utf-8", "ignore")
    return f"{keep} ... (line clipped: {len(data)} bytes)"


def value_frame(request_id: int, lines: list,
                trace: Optional[str] = None) -> dict:
    frame = {"ev": "value", "id": request_id,
             "lines": [clip_line(line) for line in lines]}
    if trace is not None:
        frame["trace"] = trace
    return frame


def terminal(request_id: int, outcome: str, info: dict) -> dict:
    """A terminal frame from one :meth:`DuelSession.ievents` payload."""
    if outcome not in TERMINAL_EVENTS:
        raise ProtocolError(f"unknown terminal outcome {outcome!r}")
    frame = {"ev": outcome, "id": request_id,
             "values": info.get("values", 0)}
    for key in ("kind", "diagnostic", "error", "error_type", "stats",
                "replayed", "trace", "profile", "fingerprint", "access",
                "advisor"):
        if key in info:
            frame[key] = info[key]
    return frame


def rejected(request_id: int, reason: str, **extra) -> dict:
    frame = {"ev": "rejected", "id": request_id, "reason": reason}
    frame.update(extra)
    return frame
