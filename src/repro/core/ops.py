"""apply(): DUEL's own implementation of the C operators.

The paper: "Duel duplicates some debugger capabilities ... Duel
contains its own type and value representations and its own
implementation of the C operators."  This module is that ~1200-line
component: arithmetic with the usual conversions, pointer arithmetic,
comparisons, logical/bitwise operators, assignment (including compound
and bit-field forms), casts, sizeof, indexing, and dereference — all
over :class:`~repro.core.values.DuelValue`.

Type checking happens here, at evaluation time, as the paper requires
for expressions like ``(x,y).a`` where x and y may have different
struct types.
"""

from __future__ import annotations

from typing import Optional

from repro.ctype.convert import (
    convert_value,
    usual_arithmetic_conversions,
    integer_promote,
)
from repro.ctype.kinds import Kind, wrap_int
from repro.ctype.types import (
    ArrayType,
    CType,
    EnumType,
    INT,
    LONG,
    PointerType,
    PrimitiveType,
    RecordType,
    ULONG,
)
from repro.core.errors import DuelMemoryError, DuelTypeError
from repro.core.symbolic import (
    PREC_ADDITIVE,
    PREC_BITAND,
    PREC_BITOR,
    PREC_BITXOR,
    PREC_EQUALITY,
    PREC_MULTIPLICATIVE,
    PREC_RELATIONAL,
    PREC_SHIFT,
    Sym,
    SymBinary,
    SymIndex,
    SymText,
    SymUnary,
)
from repro.core.values import DuelValue, ValueOps, lvalue, rvalue

#: C spelling -> symbolic precedence for binary operators.
BINARY_PREC = {
    "*": PREC_MULTIPLICATIVE, "/": PREC_MULTIPLICATIVE, "%": PREC_MULTIPLICATIVE,
    "+": PREC_ADDITIVE, "-": PREC_ADDITIVE,
    "<<": PREC_SHIFT, ">>": PREC_SHIFT,
    "<": PREC_RELATIONAL, ">": PREC_RELATIONAL,
    "<=": PREC_RELATIONAL, ">=": PREC_RELATIONAL,
    "==": PREC_EQUALITY, "!=": PREC_EQUALITY,
    "&": PREC_BITAND, "^": PREC_BITXOR, "|": PREC_BITOR,
}

_COMPARISONS = {"<", ">", "<=", ">=", "==", "!="}
_INT_ONLY = {"%", "<<", ">>", "&", "^", "|"}


class Apply:
    """Operator application bound to a backend (via :class:`ValueOps`)."""

    def __init__(self, ops: ValueOps):
        self.ops = ops

    # ==================================================================
    # binary operators
    # ==================================================================
    def binary(self, op: str, a: DuelValue, b: DuelValue,
               sym: Optional[Sym] = None) -> DuelValue:
        """Apply a C binary operator; returns the result value."""
        if sym is None:
            sym = SymBinary(op, a.sym, b.sym, BINARY_PREC.get(op, PREC_ADDITIVE))
        ra = self.ops.load_value(a)
        rb = self.ops.load_value(b)
        ta = ra.ctype.strip_typedefs()
        tb = rb.ctype.strip_typedefs()
        if op in _COMPARISONS:
            return self._compare(op, ra, rb, sym)
        if op == "+":
            if isinstance(ta, PointerType) and tb.is_integer:
                return self._pointer_add(ra, int(rb.value), sym)
            if ta.is_integer and isinstance(tb, PointerType):
                return self._pointer_add(rb, int(ra.value), sym)
        if op == "-":
            if isinstance(ta, PointerType) and isinstance(tb, PointerType):
                return self._pointer_diff(ra, rb, sym)
            if isinstance(ta, PointerType) and tb.is_integer:
                return self._pointer_add(ra, -int(rb.value), sym)
        if isinstance(ta, PointerType) or isinstance(tb, PointerType):
            raise DuelTypeError(f"invalid pointer operands to {op!r}",
                                sym.render())
        return self._arith(op, ra, rb, sym)

    def _arith(self, op: str, ra: DuelValue, rb: DuelValue,
               sym: Sym) -> DuelValue:
        ta, tb = ra.ctype, rb.ctype
        if not (ta.is_arithmetic and tb.is_arithmetic):
            raise DuelTypeError(
                f"non-arithmetic operands to {op!r} "
                f"({ta.name()} and {tb.name()})", sym.render())
        common = usual_arithmetic_conversions(ta, tb)
        stripped = common.strip_typedefs()
        if op in _INT_ONLY and stripped.is_float:
            raise DuelTypeError(f"floating operand to {op!r}", sym.render())
        x = convert_value(ra.value, ta, common)
        y = convert_value(rb.value, tb, common)
        if op in ("/", "%") and not stripped.is_float and y == 0:
            raise DuelTypeError("division by zero", sym.render())
        if op == "+":
            result = x + y
        elif op == "-":
            result = x - y
        elif op == "*":
            result = x * y
        elif op == "/":
            if stripped.is_float:
                result = x / y
            else:
                result = _c_div(x, y)
        elif op == "%":
            result = _c_mod(x, y)
        elif op == "<<":
            result = x << (y & 63)
        elif op == ">>":
            result = x >> (y & 63)
        elif op == "&":
            result = x & y
        elif op == "^":
            result = x ^ y
        elif op == "|":
            result = x | y
        else:  # pragma: no cover - parser prevents unknown ops
            raise DuelTypeError(f"unknown binary operator {op!r}", sym.render())
        if not stripped.is_float:
            result = wrap_int(int(result), _kind_of(stripped))
        return rvalue(common, result, sym)

    def _compare(self, op: str, ra: DuelValue, rb: DuelValue,
                 sym: Sym) -> DuelValue:
        x, y = self._comparable_pair(op, ra, rb, sym)
        result = {
            "<": x < y, ">": x > y, "<=": x <= y,
            ">=": x >= y, "==": x == y, "!=": x != y,
        }[op]
        return rvalue(INT, int(result), sym)

    def _comparable_pair(self, op: str, ra: DuelValue, rb: DuelValue,
                         sym: Sym):
        ta = ra.ctype.strip_typedefs()
        tb = rb.ctype.strip_typedefs()
        if isinstance(ta, PointerType) or isinstance(tb, PointerType):
            ok_a = isinstance(ta, PointerType) or ta.is_integer
            ok_b = isinstance(tb, PointerType) or tb.is_integer
            if not (ok_a and ok_b):
                raise DuelTypeError(
                    f"invalid pointer comparison with {op!r}", sym.render())
            return int(ra.value), int(rb.value)
        if not (ta.is_arithmetic and tb.is_arithmetic):
            raise DuelTypeError(
                f"non-arithmetic operands to {op!r}", sym.render())
        common = usual_arithmetic_conversions(ra.ctype, rb.ctype)
        return (convert_value(ra.value, ra.ctype, common),
                convert_value(rb.value, rb.ctype, common))

    def compare_true(self, op: str, a: DuelValue, b: DuelValue) -> bool:
        """The raw truth of ``a op b`` (used by ``>?`` and friends)."""
        ra = self.ops.load_value(a)
        rb = self.ops.load_value(b)
        sym = SymBinary(op, a.sym, b.sym, PREC_RELATIONAL)
        x, y = self._comparable_pair(op.rstrip("?"), ra, rb, sym)
        base = op.rstrip("?")
        return {
            "<": x < y, ">": x > y, "<=": x <= y,
            ">=": x >= y, "==": x == y, "!=": x != y,
        }[base]

    # -- pointer arithmetic ------------------------------------------------
    def _pointer_add(self, ptr: DuelValue, delta: int, sym: Sym) -> DuelValue:
        ptype = ptr.ctype.strip_typedefs()
        assert isinstance(ptype, PointerType)
        stride = self._stride(ptype, sym)
        return rvalue(ptr.ctype, int(ptr.value) + delta * stride, sym)

    def _pointer_diff(self, pa: DuelValue, pb: DuelValue, sym: Sym) -> DuelValue:
        ta = pa.ctype.strip_typedefs()
        stride = self._stride(ta, sym)
        return rvalue(LONG, (int(pa.value) - int(pb.value)) // stride, sym)

    def _stride(self, ptype: PointerType, sym: Sym) -> int:
        target = ptype.target.strip_typedefs()
        if target.is_void or target.is_function:
            return 1
        try:
            return max(target.size, 1)
        except TypeError:
            raise DuelTypeError(
                f"arithmetic on pointer to incomplete type {target.name()}",
                sym.render()) from None

    # ==================================================================
    # unary operators
    # ==================================================================
    def negate(self, v: DuelValue, sym: Optional[Sym] = None) -> DuelValue:
        r = self.ops.load_value(v)
        sym = sym or SymUnary("-", v.sym)
        if not r.ctype.is_arithmetic:
            raise DuelTypeError("unary - on non-arithmetic value", sym.render())
        promoted = integer_promote(r.ctype) if r.ctype.is_integer else r.ctype
        stripped = promoted.strip_typedefs()
        result = -r.value
        if not stripped.is_float:
            result = wrap_int(int(result), _kind_of(stripped))
        return rvalue(promoted, result, sym)

    def plus(self, v: DuelValue, sym: Optional[Sym] = None) -> DuelValue:
        r = self.ops.load_value(v)
        sym = sym or SymUnary("+", v.sym)
        if not r.ctype.is_arithmetic:
            raise DuelTypeError("unary + on non-arithmetic value", sym.render())
        return rvalue(r.ctype, r.value, sym)

    def bitnot(self, v: DuelValue, sym: Optional[Sym] = None) -> DuelValue:
        r = self.ops.load_value(v)
        sym = sym or SymUnary("~", v.sym)
        if not r.ctype.is_integer:
            raise DuelTypeError("~ on non-integer value", sym.render())
        promoted = integer_promote(r.ctype)
        stripped = promoted.strip_typedefs()
        return rvalue(promoted,
                      wrap_int(~int(r.value), _kind_of(stripped)), sym)

    def lognot(self, v: DuelValue, sym: Optional[Sym] = None) -> DuelValue:
        sym = sym or SymUnary("!", v.sym)
        return rvalue(INT, int(not self.ops.truthy(v)), sym)

    def deref(self, v: DuelValue, sym: Optional[Sym] = None,
              pattern: str = "*x") -> DuelValue:
        """``*p``: pointer rvalue -> lvalue of the pointed-to type."""
        r = self.ops.load_value(v)
        sym = sym or SymUnary("*", v.sym)
        stripped = r.ctype.strip_typedefs()
        if isinstance(stripped, PointerType):
            address = int(r.value)
            self._check_pointer(address, stripped.target, v, pattern)
            return lvalue(stripped.target, address, sym)
        if isinstance(stripped, ArrayType):
            return lvalue(stripped.element, v.address, sym)
        raise DuelTypeError(
            f"dereference of non-pointer ({r.ctype.name()})", sym.render())

    def addressof(self, v: DuelValue, sym: Optional[Sym] = None) -> DuelValue:
        sym = sym or SymUnary("&", v.sym)
        if v.func_name is not None:
            symbol = self.ops.backend.get_target_variable(v.func_name)
            return rvalue(PointerType(v.ctype), symbol.address, sym)
        if not v.is_lvalue:
            raise DuelTypeError("& of non-lvalue", sym.render())
        if v.is_bitfield:
            raise DuelTypeError("& of bit-field", sym.render())
        return rvalue(PointerType(v.ctype), v.address, sym)

    def sizeof(self, ctype: CType, sym: Sym) -> DuelValue:
        try:
            size = ctype.size
        except TypeError as exc:
            raise DuelTypeError(str(exc), sym.render()) from None
        return rvalue(ULONG, size, sym)

    # ==================================================================
    # indexing, fields, casts
    # ==================================================================
    def index(self, base: DuelValue, index: DuelValue,
              sym: Optional[Sym] = None) -> DuelValue:
        """``e1[e2]`` with C semantics (pointer or array base)."""
        if sym is None:
            sym = SymIndex(base.sym, index.sym)
        rb = self.ops.load_value(base)
        ri = self.ops.load_value(index)
        tb = rb.ctype.strip_typedefs()
        if not ri.ctype.is_integer:
            # C allows i[p]; normalise.
            if isinstance(ri.ctype.strip_typedefs(), PointerType) and \
                    rb.ctype.is_integer:
                rb, ri = ri, rb
                tb = rb.ctype.strip_typedefs()
            else:
                raise DuelTypeError("array index is not an integer",
                                    sym.render())
        if not isinstance(tb, PointerType):
            raise DuelTypeError(
                f"indexed value is not array or pointer ({base.ctype.name()})",
                sym.render())
        element = tb.target
        stride = self._stride(tb, sym)
        address = int(rb.value) + int(ri.value) * stride
        self._check_pointer(address, element, base, "x[y]")
        return lvalue(element, address, sym)

    def field(self, base: DuelValue, name: str, arrow: bool,
              sym: Sym) -> DuelValue:
        """Plain C member access (used by the with machinery)."""
        operand = base
        if arrow:
            operand = self.deref(base, sym=base.sym, pattern="x->y")
        record = operand.ctype.strip_typedefs()
        if not isinstance(record, RecordType):
            raise DuelTypeError(
                f"member access on non-record ({operand.ctype.name()})",
                sym.render())
        f = record.field(name)
        if f is None:
            raise DuelTypeError(
                f"no member {name!r} in {record.name()}", sym.render())
        if not operand.is_lvalue:
            raise DuelTypeError("member access on non-lvalue record",
                                sym.render())
        return DuelValue(
            ctype=f.ctype, sym=sym,
            address=operand.address + f.offset,
            bit_offset=f.bit_offset, bit_width=f.bit_width)

    def cast(self, ctype: CType, v: DuelValue, sym: Sym) -> DuelValue:
        stripped = ctype.strip_typedefs()
        if stripped.is_void:
            return rvalue(ctype, None, sym)
        if isinstance(stripped, RecordType):
            raise DuelTypeError("cast to record type", sym.render())
        r = self.ops.load_value(v)
        try:
            converted = convert_value(r.value, r.ctype, ctype)
        except TypeError as exc:
            raise DuelTypeError(str(exc), sym.render()) from None
        return rvalue(ctype, converted, sym)

    # ==================================================================
    # assignment
    # ==================================================================
    def assign(self, dest: DuelValue, src: DuelValue, sym: Sym) -> DuelValue:
        """``dest = src``; returns dest's new value as the result."""
        stripped = dest.ctype.strip_typedefs()
        if isinstance(stripped, RecordType):
            self.ops.store(dest, src)
            return dest.with_sym(sym)
        r = self.ops.load_value(src)
        try:
            converted = convert_value(r.value, r.ctype, dest.ctype)
        except TypeError as exc:
            raise DuelTypeError(str(exc), sym.render()) from None
        self.ops.store(dest, converted)
        return DuelValue(ctype=dest.ctype, sym=sym, value=None,
                         address=dest.address,
                         bit_offset=dest.bit_offset,
                         bit_width=dest.bit_width)

    def compound_assign(self, op: str, dest: DuelValue, src: DuelValue,
                        sym: Sym) -> DuelValue:
        """``dest op= src``."""
        combined = self.binary(op, dest, src, sym=sym)
        return self.assign(dest, combined, sym)

    def incdec(self, op: str, v: DuelValue, postfix: bool,
               sym: Sym) -> DuelValue:
        """``++``/``--``, both fixities; returns old or new value."""
        old = self.ops.load_value(v)
        one = rvalue(INT, 1, SymText("1"))
        updated = self.binary("+" if op == "++" else "-", old, one, sym=sym)
        self.assign(v, updated, sym)
        result = old if postfix else self.ops.load_value(v)
        return result.with_sym(sym)

    # ==================================================================
    # helpers
    # ==================================================================
    def _check_pointer(self, address: int, target: CType, origin: DuelValue,
                       pattern: str) -> None:
        """Fault early, with the paper's error format, on bad pointers."""
        try:
            size = max(target.strip_typedefs().size, 1)
        except TypeError:
            size = 1
        if address == 0 or not self.ops.backend.is_mapped(address, size):
            raise DuelMemoryError(
                "x", pattern, origin.sym.render(), f"lvalue {address:#x}")


def _c_div(x: int, y: int) -> int:
    """C integer division truncates toward zero."""
    q = abs(x) // abs(y)
    return q if (x >= 0) == (y >= 0) else -q


def _c_mod(x: int, y: int) -> int:
    """C remainder: (x/y)*y + x%y == x."""
    return x - _c_div(x, y) * y


def _kind_of(stripped: CType) -> Kind:
    if isinstance(stripped, EnumType):
        return Kind.INT
    if isinstance(stripped, PrimitiveType):
        return stripped.kind
    if isinstance(stripped, PointerType):
        return Kind.ULONG
    return Kind.INT

