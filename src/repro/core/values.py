"""DUEL values.

"The 'values' produced during evaluation have a type, an actual value,
and a symbolic value.  The actual value is a value of a primitive C
type or an lvalue, which is a pointer to target data." (paper
§Implementation)

:class:`DuelValue` encapsulates exactly that triple.  Lvalues carry a
target address (plus bit-field coordinates when needed); rvalues carry
a Python number.  Loading an lvalue's current contents goes through the
narrow debugger interface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.ctype.encode import decode_value, encode_value, extract_bitfield, insert_bitfield
from repro.ctype.types import (
    ArrayType,
    BitFieldType,
    CType,
    INT,
    RecordType,
)
from repro.core.errors import DuelError, DuelMemoryError, DuelTypeError
from repro.core.symbolic import Sym, SymText


@dataclass
class DuelValue:
    """One value flowing through the evaluator: type + actual + symbolic."""

    ctype: CType
    sym: Sym
    #: For rvalues: the Python number (int/float) or None for void.
    value: Optional[object] = None
    #: For lvalues: the target address this value designates.
    address: Optional[int] = None
    #: Bit-field coordinates within the addressed unit, if any.
    bit_offset: Optional[int] = None
    bit_width: Optional[int] = None
    #: For function designators: the symbol name (call by name).
    func_name: Optional[str] = None

    @property
    def is_lvalue(self) -> bool:
        return self.address is not None

    @property
    def is_bitfield(self) -> bool:
        return self.bit_width is not None

    def with_sym(self, sym: Sym) -> "DuelValue":
        """The same value under a different symbolic expression."""
        return replace(self, sym=sym)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loc = (f"@{self.address:#x}" if self.is_lvalue
               else f"={self.value!r}")
        return f"<DuelValue {self.sym.render()} : {self.ctype} {loc}>"


def rvalue(ctype: CType, value, sym: Sym) -> DuelValue:
    """Construct a plain rvalue."""
    return DuelValue(ctype=ctype, sym=sym, value=value)


def lvalue(ctype: CType, address: int, sym: Sym) -> DuelValue:
    """Construct an lvalue designating target storage."""
    return DuelValue(ctype=ctype, sym=sym, address=address)


def int_value(value: int, sym: Optional[Sym] = None,
              ctype: CType = INT) -> DuelValue:
    """An int rvalue whose symbolic defaults to its decimal spelling."""
    return rvalue(ctype, value, sym if sym is not None else SymText(str(value)))


class ValueOps:
    """Load/store operations binding DuelValues to a debugger backend.

    Kept separate from :class:`DuelValue` so values stay inert data and
    the single point of target access is explicit (and mockable).
    """

    def __init__(self, backend):
        self.backend = backend

    # -- loading ---------------------------------------------------------
    def load(self, v: DuelValue) -> object:
        """The current contents of ``v`` (reads the target for lvalues)."""
        if not v.is_lvalue:
            return v.value
        stripped = v.ctype.strip_typedefs()
        if isinstance(stripped, ArrayType):
            # Arrays decay: the "value" of an array lvalue is its address.
            return v.address
        if isinstance(stripped, RecordType):
            # A record's contents is its storage; callers use the address.
            return v.address
        if v.is_bitfield:
            unit_type = stripped.base if isinstance(stripped, BitFieldType) else stripped
            raw = self._read(v, v.address, unit_type.size)
            unit = int.from_bytes(raw, "little", signed=False)
            signed = getattr(unit_type.strip_typedefs(), "signed", True)
            return extract_bitfield(unit, v.bit_offset or 0, v.bit_width, signed)
        raw = self._read(v, v.address, stripped.size)
        return decode_value(raw, stripped)

    def load_value(self, v: DuelValue) -> DuelValue:
        """An rvalue copy of ``v`` with contents loaded (arrays decay)."""
        stripped = v.ctype.strip_typedefs()
        if v.is_lvalue and isinstance(stripped, ArrayType):
            return rvalue(stripped.decay(), v.address, v.sym)
        if v.is_lvalue and isinstance(stripped, RecordType):
            return v  # records stay addressed; ops treat them specially
        if not v.is_lvalue:
            return v
        loaded = self.load(v)
        ctype = v.ctype
        if isinstance(stripped, BitFieldType):
            ctype = stripped.base
        return rvalue(ctype, loaded, v.sym)

    # -- storing -----------------------------------------------------------
    def store(self, dest: DuelValue, value) -> None:
        """Store a raw Python number into lvalue ``dest``."""
        if not dest.is_lvalue:
            raise DuelTypeError("assignment to non-lvalue",
                                dest.sym.render())
        stripped = dest.ctype.strip_typedefs()
        if dest.is_bitfield:
            unit_type = (stripped.base if isinstance(stripped, BitFieldType)
                         else stripped)
            raw = self._read(dest, dest.address, unit_type.size)
            unit = int.from_bytes(raw, "little", signed=False)
            unit = insert_bitfield(unit, dest.bit_offset or 0,
                                   dest.bit_width, int(value))
            data = unit.to_bytes(unit_type.size, "little", signed=False)
            self._write(dest, dest.address, data)
            return
        if isinstance(stripped, RecordType):
            # Struct assignment: byte copy from another record lvalue.
            src = value
            if not (isinstance(src, DuelValue) and src.is_lvalue):
                raise DuelTypeError("struct assignment needs a struct lvalue",
                                    dest.sym.render())
            data = self._read(src, src.address, stripped.size)
            self._write(dest, dest.address, data)
            return
        self._write(dest, dest.address, encode_value(value, stripped))

    # -- raw access with paper-style error reporting ------------------------
    def _read(self, v: DuelValue, address: int, size: int) -> bytes:
        try:
            return self.backend.get_target_bytes(address, size)
        except DuelError:
            # A cancellation or limit tripping *inside* a backend call
            # (the watchdog's async raise) is not a memory fault and
            # must keep its identity.
            raise
        except Exception:
            raise DuelMemoryError(
                "x", "x", v.sym.render(), f"lvalue {address:#x}") from None

    def _write(self, v: DuelValue, address: int, data: bytes) -> None:
        try:
            self.backend.put_target_bytes(address, data)
        except DuelError:
            raise
        except Exception:
            raise DuelMemoryError(
                "x", "x=y", v.sym.render(), f"lvalue {address:#x}") from None

    # -- truthiness ----------------------------------------------------------
    def truthy(self, v: DuelValue) -> bool:
        """C truth value of ``v`` (loads lvalues)."""
        stripped = v.ctype.strip_typedefs()
        if isinstance(stripped, RecordType):
            raise DuelTypeError(
                f"record value used in boolean context", v.sym.render())
        loaded = self.load(v)
        if loaded is None:
            raise DuelTypeError("void value used in boolean context",
                                v.sym.render())
        return bool(loaded)


def describe_location(v: DuelValue) -> str:
    """Short location descriptor used in diagnostics."""
    if v.is_lvalue:
        return f"lvalue {v.address:#x}"
    return f"value {v.value!r}"


__all__ = [
    "DuelValue",
    "ValueOps",
    "rvalue",
    "lvalue",
    "int_value",
    "describe_location",
]
