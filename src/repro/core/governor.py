"""Per-query resource governance: budgets, deadlines, cancellation.

The paper warns that DUEL expressions are arbitrarily expensive —
``1..`` and ``while(1) x++`` are runaway generators — and relies on
"the standard gdb ^C interrupt" to stop them.  A production-scale
query service needs the same property as a first-class subsystem:
every query runs under a :class:`ResourceGovernor` that owns all
per-query limits and a cooperative :class:`CancelToken`, and decides
*how* exhaustion surfaces:

``raise``
    the historical behaviour — abort the query with a
    :class:`~repro.core.errors.DuelEvalLimit` (side-effecting queries
    are rolled back by the session);

``truncate``
    stop driving, keep every value already produced, and let the
    display layer emit one paper-style diagnostic line, e.g.::

        (stopped: 10000 values, step budget exhausted; raise with 'limits steps 20000000')

The governor is threaded through both evaluation engines (the
generator :class:`~repro.core.eval.Evaluator` and the paper's explicit
:class:`~repro.core.statemachine.StateMachineEvaluator`), the session
drive/print loop, and the debugger-interface boundary
(:class:`~repro.target.interface.GovernedBackend`), so the two engines
trip identical budgets at identical counts and a ^C lands between
target operations as well as between generator steps.

Governed resources (the ``limits`` REPL command uses these names):

========== ======================================================
name        meaning
========== ======================================================
steps       generator steps (one per value any node produces)
expand      nodes expanded per ``-->`` / ``==>`` walk
deadline_ms per-query wall-clock deadline, in milliseconds
lines       output values printed per query
calls       target function calls per query
allocs      target scratch allocations per query
symnodes    symbolic derivation nodes built per query (off by default)
========== ======================================================
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.errors import DuelCancelled, DuelEvalLimit, DuelTruncation

_UNLIMITED = float("inf")

#: Default per-query limits (None disables a limit entirely).
DEFAULT_LIMITS: dict[str, Optional[int]] = {
    "steps": 10_000_000,
    "expand": 1_000_000,
    "deadline_ms": 30_000,
    "lines": 10_000,
    "calls": 100_000,
    "allocs": 100_000,
    "symnodes": None,
}

#: Default exhaustion policies.  Pure evaluation budgets degrade
#: gracefully (truncate: partial results stand, as under the paper's
#: ^C); target-side quotas abort (raise) so the session's rollback
#: machinery undoes a half-applied mutation storm.
DEFAULT_POLICIES: dict[str, str] = {
    "steps": "truncate",
    "expand": "truncate",
    "deadline_ms": "truncate",
    "lines": "truncate",
    "calls": "raise",
    "allocs": "raise",
    "symnodes": "truncate",
}

#: Counter attribute backing each limit (deadline_ms has none).
_COUNTERS: dict[str, str] = {
    "steps": "steps",
    "expand": "expands",
    "lines": "lines",
    "calls": "calls",
    "allocs": "allocs",
    "symnodes": "symnodes",
}


class CancelToken:
    """Cooperative cancellation flag, safe to trip from a signal handler.

    Tripping only sets a flag; the governor notices at its next
    checkpoint and raises :class:`~repro.core.errors.DuelCancelled`,
    which the drive loop turns into partial results plus a
    ``(stopped: ... interrupted)`` line — the paper's ^C behaviour.
    """

    __slots__ = ("tripped", "reason")

    def __init__(self) -> None:
        self.tripped = False
        self.reason: Optional[str] = None

    def trip(self, reason: str = "interrupt") -> None:
        """Request cancellation (idempotent; signal-handler safe)."""
        self.reason = reason
        self.tripped = True

    def clear(self) -> None:
        self.tripped = False
        self.reason = None


class ResourceGovernor:
    """Owns every per-query limit, counter, and the cancel token.

    Hot-path contract: :meth:`step` is called once per value any node
    produces (both engines), so it is a handful of attribute ops; the
    wall clock and the cancel token are only consulted every
    ``CHECK_EVERY`` steps and at explicit :meth:`checkpoint` calls
    (per output line, per target call).
    """

    #: Steps between deadline/cancellation checks (power of two).
    CHECK_EVERY = 256

    __slots__ = ("limits", "policies", "token", "steps", "expands",
                 "lines", "calls", "allocs", "symnodes", "_t0",
                 "_deadline", "_finished", "_max_steps", "_max_symnodes",
                 "_next_check")

    def __init__(self, limits: Optional[dict] = None,
                 policies: Optional[dict] = None):
        self.limits = dict(DEFAULT_LIMITS)
        self.policies = dict(DEFAULT_POLICIES)
        self.token = CancelToken()
        self.steps = 0
        self.expands = 0
        self.lines = 0
        self.calls = 0
        self.allocs = 0
        self.symnodes = 0
        self._t0 = time.monotonic()
        self._deadline: Optional[float] = None
        self._finished: Optional[float] = None
        self._refresh()
        if limits:
            for name, value in limits.items():
                self.set_limit(name, value)
        if policies:
            for name, policy in policies.items():
                self.set_policy(name, policy)

    # -- configuration -----------------------------------------------------
    def set_limit(self, name: str, value: Optional[int]) -> None:
        """Set one limit; ``None`` or a non-positive value disables it."""
        if name not in DEFAULT_LIMITS:
            raise ValueError(f"unknown limit {name!r} "
                             f"(know: {', '.join(DEFAULT_LIMITS)})")
        if value is not None:
            value = int(value)
            if value <= 0:
                value = None
        self.limits[name] = value
        self._refresh()
        if name == "deadline_ms":
            self._stamp_deadline()

    def set_policy(self, name: str, policy: str) -> None:
        """Set one limit's exhaustion policy: ``raise`` or ``truncate``."""
        if name not in DEFAULT_LIMITS:
            raise ValueError(f"unknown limit {name!r}")
        if policy not in ("raise", "truncate"):
            raise ValueError(f"unknown policy {policy!r} "
                             "(know: raise, truncate)")
        self.policies[name] = policy

    def _refresh(self) -> None:
        """Cache the hot-path thresholds as plain comparands."""
        steps = self.limits["steps"]
        self._max_steps = _UNLIMITED if steps is None else steps
        symnodes = self.limits["symnodes"]
        self._max_symnodes = _UNLIMITED if symnodes is None else symnodes
        self._schedule_check()

    def _schedule_check(self) -> None:
        """Recompute the next step count that needs the slow path: the
        nearer of the step limit and the next CHECK_EVERY boundary."""
        every = self.CHECK_EVERY
        boundary = self.steps - (self.steps % every) + every
        self._next_check = min(self._max_steps + 1, boundary)

    def _stamp_deadline(self) -> None:
        deadline_ms = self.limits["deadline_ms"]
        self._deadline = (None if deadline_ms is None
                          else self._t0 + deadline_ms / 1000.0)

    # -- query lifecycle ---------------------------------------------------
    def begin_query(self) -> None:
        """Zero the counters, clear the token, stamp the deadline."""
        self.steps = 0
        self.expands = 0
        self.lines = 0
        self.calls = 0
        self.allocs = 0
        self.symnodes = 0
        self.token.clear()
        self._t0 = time.monotonic()
        self._finished = None
        self._stamp_deadline()
        self._schedule_check()

    def end_query(self) -> None:
        """Freeze the wall clock for post-query stats reporting."""
        self._finished = time.monotonic()

    def elapsed_ms(self) -> float:
        """Wall-clock milliseconds since the current query began."""
        end = self._finished if self._finished is not None \
            else time.monotonic()
        return (end - self._t0) * 1000.0

    # -- hot-path charging -------------------------------------------------
    def step(self) -> None:
        """Charge one generator step (called once per value produced).

        The generator engine inlines this increment-and-compare in
        ``Evaluator._counted`` to keep a method call off the hot path;
        both funnel into :meth:`step_check` at the same counts.
        """
        n = self.steps + 1
        self.steps = n
        if n >= self._next_check:
            self.step_check()

    def step_check(self) -> None:
        """Slow path, reached every CHECK_EVERY steps and exactly once
        past the step limit: enforce the budget, poll the token and the
        deadline, schedule the next check."""
        if self.steps > self._max_steps:
            self._exhaust("steps")
        self.checkpoint()
        self._schedule_check()

    def sym_node(self) -> None:
        """Charge one symbolic derivation node."""
        n = self.symnodes + 1
        self.symnodes = n
        if n > self._max_symnodes:
            self._exhaust("symnodes")

    def charge(self, name: str, amount: int = 1) -> None:
        """Charge ``amount`` against the named quota."""
        attr = _COUNTERS[name]
        total = getattr(self, attr) + amount
        setattr(self, attr, total)
        limit = self.limits[name]
        if limit is not None and total > limit:
            self._exhaust(name)

    def checkpoint(self) -> None:
        """Honour the cancel token and the wall-clock deadline."""
        if self.token.tripped:
            raise DuelCancelled(self.token.reason or "interrupt")
        if self._deadline is not None and time.monotonic() > self._deadline:
            self._exhaust("deadline_ms")

    def _exhaust(self, name: str):
        limit = self.limits[name]
        if self.policies.get(name, "raise") == "truncate":
            raise DuelTruncation(limit, name)
        raise DuelEvalLimit(limit, name)

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Counters of the current/last query (for the stats footer)."""
        return {
            "steps": self.steps,
            "expand": self.expands,
            "lines": self.lines,
            "calls": self.calls,
            "allocs": self.allocs,
            "symnodes": self.symnodes,
            "wall_ms": self.elapsed_ms(),
        }

    def describe(self) -> list[str]:
        """One ``name  limit  policy`` line per limit (REPL ``limits``)."""
        out = []
        for name in DEFAULT_LIMITS:
            limit = self.limits[name]
            shown = "off" if limit is None else str(limit)
            out.append(f"{name:<12} {shown:>12}   ({self.policies[name]})")
        return out
