"""AST nodes for DUEL expressions.

"All AST nodes have an op field, which identifies the node's operand,
and a kids field, which is an array of pointers to the operand nodes.
Nodes for specific operators have additional fields" (paper
§Semantics).  Nodes are pure data; evaluation lives in
:mod:`repro.core.eval` (mirroring the paper's single ``eval`` that
switches on ``op``), and the explicit state-machine engine in
:mod:`repro.core.statemachine` reuses the same nodes.

Each node also knows how to print itself in the paper's LISP-like AST
notation, e.g. ``(plus (to 1 3) (alternate 5 9))``, which the tests use
to pin down parses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Node:
    """Base AST node: an ``op`` plus ``kids``."""

    op: str = "?"

    @property
    def kids(self) -> tuple["Node", ...]:
        return ()

    def sexpr(self) -> str:
        """The paper's LISP-like notation for ASTs."""
        inner = " ".join(k.sexpr() for k in self.kids)
        extra = self._sexpr_extra()
        parts = [self.op]
        if extra:
            parts.append(extra)
        if inner:
            parts.append(inner)
        return "(" + " ".join(parts) + ")"

    def _sexpr_extra(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.sexpr()


@dataclass(repr=False)
class Constant(Node):
    """A literal: int, float, or character constant."""

    value: object
    type_hint: str = "int"  # int | uint | long | ulong | double | char
    text: str = ""
    op: str = field(default="constant", init=False)

    def _sexpr_extra(self) -> str:
        return self.text or str(self.value)


@dataclass(repr=False)
class StringLiteral(Node):
    """A C string literal (interned into target space at eval time)."""

    value: bytes
    text: str = ""
    op: str = field(default="string", init=False)

    def _sexpr_extra(self) -> str:
        return self.text or repr(self.value)


@dataclass(repr=False)
class Name(Node):
    """An identifier, resolved by ``fetch`` at evaluation time."""

    name: str
    op: str = field(default="name", init=False)

    def _sexpr_extra(self) -> str:
        return f'"{self.name}"'


@dataclass(repr=False)
class Underscore(Node):
    """``_`` — the operand of the nearest enclosing with."""

    op: str = field(default="underscore", init=False)


@dataclass(repr=False)
class Unary(Node):
    """Prefix unary operator: - + ! ~ * &."""

    operator: str
    kid: Node
    op: str = field(default="unary", init=False)

    def __post_init__(self) -> None:
        names = {"-": "negate", "+": "uplus", "!": "not", "~": "bitnot",
                 "*": "indirect", "&": "address"}
        self.op = names.get(self.operator, self.operator)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)


@dataclass(repr=False)
class IncDec(Node):
    """``++``/``--`` in either fixity."""

    operator: str
    kid: Node
    postfix: bool
    op: str = field(default="incdec", init=False)

    def __post_init__(self) -> None:
        base = "inc" if self.operator == "++" else "dec"
        self.op = ("post" if self.postfix else "pre") + base

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)


_BINARY_OPS = {
    "+": "plus", "-": "minus", "*": "multiply", "/": "divide", "%": "mod",
    "<<": "shl", ">>": "shr", "&": "bitand", "|": "bitor", "^": "bitxor",
    "<": "lt", ">": "gt", "<=": "le", ">=": "ge", "==": "eq", "!=": "ne",
}


@dataclass(repr=False)
class Binary(Node):
    """A C binary operator (single-valued apply per operand pair)."""

    operator: str
    left: Node
    right: Node
    op: str = field(default="binary", init=False)

    def __post_init__(self) -> None:
        self.op = _BINARY_OPS.get(self.operator, self.operator)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class Assign(Node):
    """``=`` and compound assignments."""

    operator: str  # "=", "+=", ...
    left: Node
    right: Node
    op: str = field(default="assign", init=False)

    def __post_init__(self) -> None:
        if self.operator != "=":
            self.op = "assign" + self.operator[:-1]

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class CompareYield(Node):
    """``>?``, ``>=?``, ``<?``, ``<=?``, ``==?``, ``!=?``.

    Produces the *left* operand when the comparison holds (paper: "The
    '>?' operator ... returns the left one when the comparison is
    true").
    """

    operator: str  # without the trailing "?"
    left: Node
    right: Node
    op: str = field(default="ifcmp", init=False)

    def __post_init__(self) -> None:
        names = {">": "ifgt", ">=": "ifge", "<": "iflt", "<=": "ifle",
                 "==": "ifeq", "!=": "ifne"}
        self.op = names[self.operator]

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class Alternate(Node):
    """``e1,e2`` — e1's values then e2's values."""

    left: Node
    right: Node
    op: str = field(default="alternate", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class To(Node):
    """``e1..e2`` (inclusive); ``lo=None`` for ``..e``; ``hi=None`` for ``e..``."""

    lo: Optional[Node]
    hi: Optional[Node]
    op: str = field(default="to", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return tuple(k for k in (self.lo, self.hi) if k is not None)

    def _sexpr_extra(self) -> str:
        if self.lo is None:
            return "prefix"
        if self.hi is None:
            return "unbounded"
        return ""


@dataclass(repr=False)
class AndAnd(Node):
    """``e1 && e2`` with generator semantics."""

    left: Node
    right: Node
    op: str = field(default="andand", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class OrOr(Node):
    """``e1 || e2`` with generator semantics."""

    left: Node
    right: Node
    op: str = field(default="oror", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class If(Node):
    """``if (e1) e2 [else e3]`` — also the ``?:`` desugaring."""

    cond: Node
    then: Node
    els: Optional[Node] = None
    op: str = field(default="if", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        if self.els is None:
            return (self.cond, self.then)
        return (self.cond, self.then, self.els)


@dataclass(repr=False)
class While(Node):
    """``while (e1) e2`` (paper WHILE: e2 repeats while all e1 non-zero)."""

    cond: Node
    body: Node
    op: str = field(default="while", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.cond, self.body)


@dataclass(repr=False)
class For(Node):
    """``for (init; cond; step) body`` cast as an expression."""

    init: Optional[Node]
    cond: Optional[Node]
    step: Optional[Node]
    body: Node
    op: str = field(default="for", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return tuple(k for k in (self.init, self.cond, self.step, self.body)
                     if k is not None)


@dataclass(repr=False)
class Sequence(Node):
    """``e1 ; e2`` — drain e1 discarding, then e2's values.

    ``right=None`` models a trailing semicolon (side effects only).
    """

    left: Node
    right: Optional[Node]
    op: str = field(default="sequence", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        if self.right is None:
            return (self.left,)
        return (self.left, self.right)


@dataclass(repr=False)
class Imply(Node):
    """``e1 => e2`` — e2's values for each value of e1."""

    left: Node
    right: Node
    op: str = field(default="imply", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class Define(Node):
    """``name := e`` — alias name to each of e's values."""

    name: str
    kid: Node
    op: str = field(default="define", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)

    def _sexpr_extra(self) -> str:
        return f'"{self.name}"'


@dataclass(repr=False)
class Declaration(Node):
    """``int i;`` — aliases to freshly allocated target locations."""

    text: str
    op: str = field(default="decl", init=False)

    def _sexpr_extra(self) -> str:
        return f'"{self.text}"'


@dataclass(repr=False)
class With(Node):
    """``e1.e2`` / ``e1->e2`` — evaluate e2 in e1's scope."""

    left: Node
    right: Node
    arrow: bool
    op: str = field(default="with", init=False)

    def __post_init__(self) -> None:
        self.op = "witharrow" if self.arrow else "with"

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(repr=False)
class Expand(Node):
    """``e1-->e2`` (dfs) / ``e1-->>e2`` (bfs extension)."""

    root: Node
    traversal: Node
    breadth_first: bool = False
    op: str = field(default="dfs", init=False)

    def __post_init__(self) -> None:
        self.op = "bfs" if self.breadth_first else "dfs"

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.root, self.traversal)


@dataclass(repr=False)
class Select(Node):
    """``e1[[e2]]`` — the e2-th values (0-based) of e1's sequence."""

    seq: Node
    selector: Node
    op: str = field(default="select", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.seq, self.selector)


@dataclass(repr=False)
class Reduce(Node):
    """Reductions: ``#/e`` (count) plus APL-style ``+/ */ &&/ ||/ <?/ >?/``."""

    operator: str  # "#", "+", "*", "&&", "||", "<?", ">?"
    kid: Node
    op: str = field(default="reduce", init=False)

    def __post_init__(self) -> None:
        names = {"#": "count", "+": "sum", "*": "product",
                 "&&": "all", "||": "any", "<?": "min", ">?": "max"}
        self.op = names[self.operator]

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)


@dataclass(repr=False)
class IndexAlias(Node):
    """``e#name`` — name aliases the 0-based position of each value."""

    kid: Node
    name: str
    op: str = field(default="indexalias", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)

    def _sexpr_extra(self) -> str:
        return f'"{self.name}"'


@dataclass(repr=False)
class Until(Node):
    """``e@c`` — e's values up to the first where the guard fires."""

    kid: Node
    guard: Node
    op: str = field(default="until", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid, self.guard)


@dataclass(repr=False)
class Group(Node):
    """``{e}`` — force the value, not the symbol, in symbolic output."""

    kid: Node
    op: str = field(default="group", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)


@dataclass(repr=False)
class Index(Node):
    """``e1[e2]`` C indexing (operands may generate)."""

    base: Node
    index: Node
    op: str = field(default="index", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.base, self.index)


@dataclass(repr=False)
class Call(Node):
    """``f(args...)`` — target call; generator args give combinations."""

    func: Node
    args: tuple[Node, ...]
    op: str = field(default="call", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.func,) + self.args


@dataclass(repr=False)
class Cast(Node):
    """``(type)e``."""

    type_text: str
    kid: Node
    op: str = field(default="cast", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,)

    def _sexpr_extra(self) -> str:
        return f'"{self.type_text}"'


@dataclass(repr=False)
class SizeOf(Node):
    """``sizeof e`` or ``sizeof(type)``."""

    kid: Optional[Node] = None
    type_text: Optional[str] = None
    op: str = field(default="sizeof", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.kid,) if self.kid is not None else ()

    def _sexpr_extra(self) -> str:
        return f'"{self.type_text}"' if self.type_text else ""


@dataclass(repr=False)
class FrameExpr(Node):
    """``frame(e)`` — extension: enter stack frame e's scope."""

    index: Node
    op: str = field(default="frame", init=False)

    @property
    def kids(self) -> tuple[Node, ...]:
        return (self.index,)


def walk(node: Node):
    """Yield every node in the tree, preorder."""
    yield node
    for kid in node.kids:
        yield from walk(kid)


def node_count(node: Node) -> int:
    """Total nodes in an AST (conciseness metrics use this)."""
    return sum(1 for _ in walk(node))

