"""DUEL — the very high-level debugging language (the paper's contribution).

Public surface:

* :class:`~repro.core.session.DuelSession` — the ``duel`` command bound
  to a debugger backend;
* :func:`~repro.core.parser.parse` — expression -> AST;
* :class:`~repro.core.eval.Evaluator` — the generator evaluator;
* :class:`~repro.core.statemachine.StateMachineEvaluator` — the paper's
  explicit state/NOVALUE evaluation scheme (ablation engine).

Typical use::

    from repro import DuelSession, SimulatorBackend, TargetProgram
    from repro.target import builder

    program = TargetProgram()
    builder.int_array(program, "x", [3, -1, 7, 0, 12])
    session = DuelSession(SimulatorBackend(program))
    session.duel("x[..5] >? 0")      # prints x[0] = 3, x[2] = 7, x[4] = 12
"""

from repro.core.errors import (
    DuelCancelled,
    DuelError,
    DuelEvalLimit,
    DuelMemoryError,
    DuelNameError,
    DuelSyntaxError,
    DuelTruncation,
    DuelTypeError,
)
from repro.core.eval import EvalOptions, Evaluator
from repro.core.governor import CancelToken, ResourceGovernor
from repro.core.parser import DuelParser, parse
from repro.core.session import DuelSession
from repro.core.values import DuelValue

__all__ = [
    "DuelSession",
    "DuelParser",
    "parse",
    "Evaluator",
    "EvalOptions",
    "DuelValue",
    "DuelError",
    "DuelSyntaxError",
    "DuelTypeError",
    "DuelNameError",
    "DuelMemoryError",
    "DuelEvalLimit",
    "DuelTruncation",
    "DuelCancelled",
    "CancelToken",
    "ResourceGovernor",
]
