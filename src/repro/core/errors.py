"""DUEL error types.

The paper specifies that errors carry the offending operand's symbolic
value::

    Illegal memory reference in x of x->y:
    ptr[48] = lvalue 0x16820.

:class:`DuelError` reproduces that shape: a *what* ("Illegal memory
reference"), the operand's role pattern ("x of x->y"), and the operand's
symbolic expression and value description.
"""

from __future__ import annotations

from typing import Optional


class DuelError(Exception):
    """Base class for errors raised while compiling/evaluating DUEL."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class DuelSyntaxError(DuelError):
    """Lexical or grammatical error in a DUEL expression."""

    def __init__(self, message: str, position: Optional[int] = None,
                 text: Optional[str] = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            caret = " " * position + "^"
            message = f"{message}\n{text}\n{caret}"
        super().__init__(message)


class DuelTypeError(DuelError):
    """Operator applied to operands of unusable type.

    DUEL type-checks during evaluation (paper §Implementation), so these
    surface at query time, with symbolic context where available.
    """

    def __init__(self, message: str, symbolic: Optional[str] = None):
        if symbolic:
            message = f"{message} in {symbolic}"
        super().__init__(message)
        self.symbolic = symbolic


class DuelNameError(DuelError):
    """A name resolved to nothing: not a field, alias, variable, or enum."""

    def __init__(self, name: str):
        super().__init__(f"no symbol {name!r} in current context")
        self.name = name


class DuelMemoryError(DuelError):
    """Illegal target memory reference, in the paper's report format."""

    def __init__(self, role: str, pattern: str, operand_sym: str,
                 operand_desc: str):
        self.role = role
        self.pattern = pattern
        self.operand_sym = operand_sym
        self.operand_desc = operand_desc
        super().__init__(
            f"Illegal memory reference in {role} of {pattern}:\n"
            f"{operand_sym} = {operand_desc}.")


class DuelTargetError(DuelError):
    """A target-side operation failed outside plain memory access.

    Raised when the debugger interface rejects a function call or a
    scratch-space allocation (including injected faults).  Carries the
    structured fault when one is available, so tools can distinguish a
    flaky target from a bad query.
    """

    def __init__(self, message: str, fault: Optional[Exception] = None):
        super().__init__(message)
        self.fault = fault


class DuelEvalLimit(DuelError):
    """Evaluation exceeded the session's step budget (runaway generator)."""

    def __init__(self, limit: int):
        super().__init__(
            f"evaluation exceeded {limit} generator steps; "
            "use an explicit bound or raise the session limit")
        self.limit = limit
