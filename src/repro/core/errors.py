"""DUEL error types.

The paper specifies that errors carry the offending operand's symbolic
value::

    Illegal memory reference in x of x->y:
    ptr[48] = lvalue 0x16820.

:class:`DuelError` reproduces that shape: a *what* ("Illegal memory
reference"), the operand's role pattern ("x of x->y"), and the operand's
symbolic expression and value description.
"""

from __future__ import annotations

from typing import Optional


class DuelError(Exception):
    """Base class for errors raised while compiling/evaluating DUEL."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class DuelSyntaxError(DuelError):
    """Lexical or grammatical error in a DUEL expression."""

    def __init__(self, message: str, position: Optional[int] = None,
                 text: Optional[str] = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            caret = " " * position + "^"
            message = f"{message}\n{text}\n{caret}"
        super().__init__(message)


class DuelTypeError(DuelError):
    """Operator applied to operands of unusable type.

    DUEL type-checks during evaluation (paper §Implementation), so these
    surface at query time, with symbolic context where available.
    """

    def __init__(self, message: str, symbolic: Optional[str] = None):
        if symbolic:
            message = f"{message} in {symbolic}"
        super().__init__(message)
        self.symbolic = symbolic


class DuelNameError(DuelError):
    """A name resolved to nothing: not a field, alias, variable, or enum."""

    def __init__(self, name: str):
        super().__init__(f"no symbol {name!r} in current context")
        self.name = name


class DuelMemoryError(DuelError):
    """Illegal target memory reference, in the paper's report format."""

    def __init__(self, role: str, pattern: str, operand_sym: str,
                 operand_desc: str):
        self.role = role
        self.pattern = pattern
        self.operand_sym = operand_sym
        self.operand_desc = operand_desc
        super().__init__(
            f"Illegal memory reference in {role} of {pattern}:\n"
            f"{operand_sym} = {operand_desc}.")


class DuelTargetError(DuelError):
    """A target-side operation failed outside plain memory access.

    Raised when the debugger interface rejects a function call or a
    scratch-space allocation (including injected faults).  Carries the
    structured fault when one is available, so tools can distinguish a
    flaky target from a bad query.
    """

    def __init__(self, message: str, fault: Optional[Exception] = None):
        super().__init__(message)
        self.fault = fault


#: Human noun for each governed resource (``DuelEvalLimit`` messages).
LIMIT_NOUNS = {
    "steps": "generator steps",
    "expand": "expanded nodes",
    "deadline_ms": "ms of wall-clock time",
    "lines": "output values",
    "calls": "target calls",
    "allocs": "target allocations",
    "symnodes": "symbolic nodes",
    "cancel": "interrupts",
}

#: Exhaustion phrase for each resource (truncation diagnostics).
LIMIT_PHRASES = {
    "steps": "step budget exhausted",
    "expand": "expand budget exhausted",
    "deadline_ms": "wall-clock deadline expired",
    "lines": "output quota exhausted",
    "calls": "target-call quota exhausted",
    "allocs": "target-allocation quota exhausted",
    "symnodes": "symbolic-node budget exhausted",
}


class DuelEvalLimit(DuelError):
    """Evaluation exhausted one of the governor's per-query limits.

    ``kind`` names the limit that tripped (``steps``, ``expand``,
    ``deadline_ms``, ``lines``, ``calls``, ``allocs``, ``symnodes``) so
    callers and users can tell a runaway generator from an expired
    deadline or a target-call storm.
    """

    def __init__(self, limit: Optional[int], kind: str = "steps"):
        noun = LIMIT_NOUNS.get(kind, kind)
        super().__init__(
            f"evaluation exceeded {limit} {noun}; use an explicit "
            f"bound or raise the session limit ('limits {kind} N')")
        self.limit = limit
        self.kind = kind


class DuelTruncation(DuelEvalLimit):
    """A limit tripped under the ``truncate`` policy.

    Not an error: the drive loop stops pulling values, keeps every
    partial result already produced, and prints :meth:`diagnostic` —
    the graceful-degradation counterpart of :class:`DuelEvalLimit`.
    Subclasses :class:`DuelEvalLimit` so programmatic callers that
    collect all values (``session.eval``) still see a limit exception.
    """

    def __init__(self, limit: Optional[int], kind: str):
        super().__init__(limit, kind)
        #: Values produced before the trip; the drive loop fills it in.
        self.produced: Optional[int] = None

    def diagnostic(self, produced: int) -> str:
        """The one-line paper-style truncation notice."""
        phrase = LIMIT_PHRASES.get(self.kind, f"{self.kind} limit reached")
        hint = ""
        if self.limit is not None:
            hint = f"; raise with 'limits {self.kind} {self.limit * 2}'"
        return f"(stopped: {produced} values, {phrase}{hint})"


class DuelCancelled(DuelTruncation):
    """The cooperative cancel token tripped (^C) mid-drive."""

    def __init__(self, reason: str = "interrupt"):
        super().__init__(None, "cancel")
        self.reason = reason
        message = f"evaluation interrupted ({reason})"
        self.message = message
        self.args = (message,)

    def diagnostic(self, produced: int) -> str:
        return f"(stopped: {produced} values, interrupted)"
