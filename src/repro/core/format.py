"""gdb-style value formatting for DUEL output lines.

The paper shows values printed the way gdb prints them: ints in
decimal, ``char *`` as the string it points to (``hash[1]->name =
"x"``), pointers in hex, doubles like ``2.500``.  The formatter takes
the debugger backend so it can chase ``char *`` values into target
memory.
"""

from __future__ import annotations

from typing import Optional

from repro.ctype.types import (
    ArrayType,
    CType,
    EnumType,
    Kind,
    PointerType,
    PrimitiveType,
    RecordType,
)
from repro.core.values import DuelValue, ValueOps

#: Longest string chased through a char * before truncating with "...".
MAX_STRING = 200
#: Most record fields / array elements printed before eliding.
MAX_AGGREGATE = 24

_ESCAPES = {
    0: "\\000", 7: "\\a", 8: "\\b", 9: "\\t", 10: "\\n",
    11: "\\v", 12: "\\f", 13: "\\r", 34: '\\"', 92: "\\\\",
}


def escape_char(code: int, quote: str = "'") -> str:
    """C source spelling of one character code."""
    if code == ord(quote):
        return "\\" + quote
    if code in _ESCAPES and chr(code) != quote:
        return _ESCAPES[code]
    if 32 <= code < 127:
        return chr(code)
    return f"\\{code:03o}"


class ValueFormatter:
    """Formats DuelValues for display."""

    def __init__(self, ops: ValueOps, float_format: str = "%g",
                 chase_strings: bool = True):
        self.ops = ops
        self.float_format = float_format
        self.chase_strings = chase_strings

    def format(self, v: DuelValue) -> str:
        """The display text for one produced value."""
        return self.format_typed(v, v.ctype)

    def format_typed(self, v: DuelValue, ctype: CType) -> str:
        stripped = ctype.strip_typedefs()
        if isinstance(stripped, RecordType):
            return self._format_record(v, stripped)
        if isinstance(stripped, ArrayType):
            return self._format_array(v, stripped)
        loaded = self.ops.load(v)
        return self.format_raw(loaded, stripped)

    # -- scalars ------------------------------------------------------------
    def format_raw(self, loaded, stripped: CType) -> str:
        """Format an already-loaded raw value of a scalar type."""
        if loaded is None:
            return "void"
        if isinstance(stripped, PointerType):
            return self._format_pointer(int(loaded), stripped)
        if isinstance(stripped, EnumType):
            name = stripped.name_of(int(loaded))
            if name is not None:
                return name
            return str(int(loaded))
        if isinstance(stripped, PrimitiveType):
            if stripped.is_float:
                return self.float_format % float(loaded)
            if stripped.kind in (Kind.CHAR, Kind.SCHAR, Kind.UCHAR):
                code = int(loaded) & 0xFF
                return f"{int(loaded)} '{escape_char(code)}'"
            return str(int(loaded))
        return str(loaded)

    def _format_pointer(self, address: int, ptype: PointerType) -> str:
        target = ptype.target.strip_typedefs()
        is_char = (isinstance(target, PrimitiveType)
                   and target.kind in (Kind.CHAR, Kind.SCHAR, Kind.UCHAR))
        if is_char and self.chase_strings and address != 0:
            chased = self._chase_string(address)
            if chased is not None:
                return chased
        return f"{address:#x}"

    def _chase_string(self, address: int) -> Optional[str]:
        out = []
        for offset in range(MAX_STRING):
            try:
                byte = self.ops.backend.get_target_bytes(address + offset, 1)
            except Exception:
                return None
            if byte == b"\0":
                return '"' + "".join(out) + '"'
            out.append(escape_char(byte[0], quote='"'))
        return '"' + "".join(out) + '"...'

    # -- aggregates -----------------------------------------------------------
    def _format_record(self, v: DuelValue, record: RecordType) -> str:
        if not v.is_lvalue:
            return f"<{record.name()}>"
        parts = []
        for f in record.fields[:MAX_AGGREGATE]:
            if not f.name:
                continue
            member = DuelValue(
                ctype=f.ctype, sym=v.sym,
                address=v.address + f.offset,
                bit_offset=f.bit_offset, bit_width=f.bit_width)
            parts.append(f"{f.name} = {self.format(member)}")
        suffix = ", ..." if len(record.fields) > MAX_AGGREGATE else ""
        return "{" + ", ".join(parts) + suffix + "}"

    def _format_array(self, v: DuelValue, arr: ArrayType) -> str:
        element = arr.element.strip_typedefs()
        is_char = (isinstance(element, PrimitiveType)
                   and element.kind in (Kind.CHAR, Kind.SCHAR, Kind.UCHAR))
        if v.is_lvalue and is_char and arr.length:
            text = self._chase_string(v.address)
            if text is not None:
                return text
        if not v.is_lvalue or arr.length is None:
            return f"<{arr.name()}>"
        parts = []
        count = min(arr.length, MAX_AGGREGATE)
        for index in range(count):
            member = DuelValue(
                ctype=arr.element, sym=v.sym,
                address=v.address + index * arr.element.size)
            parts.append(self.format(member))
        suffix = ", ..." if arr.length > MAX_AGGREGATE else ""
        return "{" + ", ".join(parts) + suffix + "}"
