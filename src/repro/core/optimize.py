"""Compile-time optimisation: constant folding over DUEL ASTs.

Paper §Implementation: "For many Duel expressions, run-time type
checking and symbol lookup could be done at compile time using
type-inference techniques."  This module implements the fragment of
that programme that needs no symbol information: folding constant
subtrees (``x[1+2]`` indexes with a pre-computed 3; ``(1..3*4)``
becomes ``(1..12)``) so the evaluator re-evaluates less per generated
value.

Display is preserved: folded constants keep their *source spelling* as
the constant's text, so ``x[1+2]`` still prints as ``x[1+2]`` — the
symbolic-value contract of the paper is unaffected by folding.

Generators are never folded (a ``To`` produces many values; folding
would change evaluation order and step accounting), and neither are
casts or sizeof (they need the type environment).  The pass is safe to
run on any tree: nodes it cannot fold are rebuilt with folded children.

Enabled via ``DuelSession(optimize=True)``; benchmark P7
(`benchmarks/bench_optimize.py`) measures the effect, reproducing the
paper's prediction.
"""

from __future__ import annotations

from typing import Optional

from repro.core import nodes as N
from repro.ctype.kinds import Kind, wrap_int

_FOLDABLE_HINTS = {"int", "uint", "long", "ulong", "char", "double"}

_INT_KINDS = {"int": Kind.INT, "uint": Kind.UINT, "long": Kind.LONG,
              "ulong": Kind.ULONG, "char": Kind.INT}


def fold(node: N.Node) -> N.Node:
    """Return an equivalent tree with constant subtrees pre-computed."""
    if isinstance(node, N.Binary):
        left = fold(node.left)
        right = fold(node.right)
        folded = _fold_binary(node.operator, left, right)
        if folded is not None:
            return folded
        return N.Binary(node.operator, left, right)
    if isinstance(node, N.Unary):
        kid = fold(node.kid)
        folded = _fold_unary(node.operator, kid)
        if folded is not None:
            return folded
        return N.Unary(node.operator, kid)
    return _rebuild(node)


def _rebuild(node: N.Node) -> N.Node:
    """Fold children in place for node classes we do not collapse."""
    for attr in ("left", "right", "kid", "cond", "then", "els", "base",
                 "index", "seq", "selector", "root", "traversal", "lo",
                 "hi", "guard", "func", "init", "step", "body"):
        child = getattr(node, attr, None)
        if isinstance(child, N.Node):
            setattr(node, attr, fold(child))
    if isinstance(node, N.Call):
        node.args = tuple(fold(a) for a in node.args)
    return node


def _source_text(node: N.Constant) -> str:
    return node.text or str(node.value)


def _fold_binary(op: str, left: N.Node, right: N.Node) -> Optional[N.Node]:
    if not (isinstance(left, N.Constant) and isinstance(right, N.Constant)):
        return None
    if (left.type_hint not in _FOLDABLE_HINTS
            or right.type_hint not in _FOLDABLE_HINTS):
        return None
    x, y = left.value, right.value
    is_float = "double" in (left.type_hint, right.type_hint)
    try:
        if op == "+":
            value = x + y
        elif op == "-":
            value = x - y
        elif op == "*":
            value = x * y
        elif op == "/":
            if is_float:
                value = x / y
            else:
                q = abs(x) // abs(y)
                value = q if (x >= 0) == (y >= 0) else -q
        elif op == "%":
            if is_float:
                return None
            q = abs(x) // abs(y)
            q = q if (x >= 0) == (y >= 0) else -q
            value = x - q * y
        elif op == "<<" and not is_float:
            value = x << (y & 63)
        elif op == ">>" and not is_float:
            value = x >> (y & 63)
        elif op == "&" and not is_float:
            value = x & y
        elif op == "|" and not is_float:
            value = x | y
        elif op == "^" and not is_float:
            value = x ^ y
        elif op in ("<", ">", "<=", ">=", "==", "!="):
            value = int({"<": x < y, ">": x > y, "<=": x <= y,
                         ">=": x >= y, "==": x == y, "!=": x != y}[op])
            return N.Constant(value, "int",
                              f"{_source_text(left)}{op}{_source_text(right)}")
        else:
            return None
    except (ZeroDivisionError, TypeError):
        return None
    hint = _result_hint(left, right, is_float)
    if not is_float:
        value = wrap_int(int(value), _INT_KINDS.get(hint, Kind.INT))
    text = f"{_source_text(left)}{op}{_source_text(right)}"
    return N.Constant(value, hint, text)


def _fold_unary(op: str, kid: N.Node) -> Optional[N.Node]:
    if not isinstance(kid, N.Constant):
        return None
    if kid.type_hint not in _FOLDABLE_HINTS:
        return None
    x = kid.value
    is_float = kid.type_hint == "double"
    if op == "-":
        value = -x
    elif op == "+":
        value = x
    elif op == "~" and not is_float:
        value = ~x
    elif op == "!":
        value = int(not x)
        return N.Constant(value, "int", f"!{_source_text(kid)}")
    else:
        return None
    hint = kid.type_hint if kid.type_hint != "char" else "int"
    if not is_float:
        value = wrap_int(int(value), _INT_KINDS.get(hint, Kind.INT))
    return N.Constant(value, hint, f"{op}{_source_text(kid)}")


def _result_hint(left: N.Constant, right: N.Constant, is_float: bool) -> str:
    if is_float:
        return "double"
    rank = {"char": 0, "int": 1, "uint": 2, "long": 3, "ulong": 4}
    a = left.type_hint if left.type_hint != "char" else "int"
    b = right.type_hint if right.type_hint != "char" else "int"
    return a if rank.get(a, 1) >= rank.get(b, 1) else b
