"""The paper's explicit evaluation scheme, reproduced literally.

Because C has no coroutines, the original DUEL implements each
generator as a state machine: every AST node carries a ``state``
(non-negative integer) and a saved ``value``; a distinguished
``NOVALUE`` signals the end of a sequence; each call to ``eval``
produces one value and "goto" labels resume evaluation mid-operator
(paper §Semantics, the numbered PLUS listing).

:class:`StateMachineEvaluator` is that scheme in Python, state kept in
a side table so ASTs stay immutable.  It covers every operator the
paper gives a listing for — constants, names, unary/binary/assignment,
``to``, ``alternate``, the conditional-yield comparisons, indexing,
if/and-and/or-or, imply, sequence, while, select, define — plus the
structural pair WITH and DFS, whose name-scope entries persist across
yields exactly as the paper's push/pop bracketing implies.  Reductions,
calls, and the other conveniences remain generator-engine-only.

The A1 benchmark and the differential tests
(``tests/property/test_engines.py``,
``tests/unit/core/test_statemachine.py``) hold the two engines
observationally identical, symbolic output included.

The two engines must be observationally identical; the property tests
in ``tests/property/test_engines.py`` check exactly that.
"""

from __future__ import annotations

from typing import Optional

from repro.core import nodes as N
from repro.core.errors import DuelError
from repro.core.eval import Evaluator
from repro.core.values import DuelValue

#: The paper's distinguished end-of-sequence marker.
NOVALUE = None


class _NodeState:
    """The paper's per-node mutable fields: ``state`` and ``value``."""

    __slots__ = ("state", "value", "aux")

    def __init__(self) -> None:
        self.state = 0
        self.value: Optional[DuelValue] = None
        self.aux = None  # iteration counters (TO) etc.


class StateMachineEvaluator:
    """Drives DUEL ASTs with the explicit state/NOVALUE protocol.

    Reuses the backend plumbing (fetch, apply) of a normal
    :class:`~repro.core.eval.Evaluator`; only the *control* is the
    paper's hand-compiled scheme instead of Python generators.
    """

    SUPPORTED = (N.Constant, N.Name, N.Unary, N.Binary, N.CompareYield,
                 N.To, N.Alternate, N.Index, N.If, N.AndAnd, N.OrOr,
                 N.Imply, N.Sequence, N.While, N.Select, N.Define,
                 N.With, N.Expand, N.Underscore, N.Assign)

    def __init__(self, evaluator: Evaluator):
        self.ev = evaluator
        self._states: dict[int, _NodeState] = {}

    # -- public ----------------------------------------------------------
    def supports(self, node: N.Node) -> bool:
        return all(isinstance(n, self.SUPPORTED) for n in N.walk(node))

    def drive(self, node: N.Node) -> list[DuelValue]:
        """Top-level command: call eval until NOVALUE (paper's driver)."""
        return list(self.iter_drive(node))

    def iter_drive(self, node: N.Node):
        """Lazy drive: one value per iteration, NOVALUE ends it.

        The generator-engine-shaped face of the state machine, so
        engine-agnostic harnesses (the query-log parity tests, partial
        consumers) can pull values one at a time and observe exactly
        how many were produced before a limit tripped.
        """
        unsupported = [n.op for n in N.walk(node)
                       if not isinstance(n, self.SUPPORTED)]
        if unsupported:
            raise DuelError(
                f"state-machine engine does not implement {unsupported[0]!r}")
        self._states.clear()
        depth = self.ev.scope.with_depth
        try:
            while True:
                value = self.eval(node)
                if value is NOVALUE:
                    return
                yield value
        finally:
            # WITH/DFS entries persist between eval calls by design;
            # unwind any leftovers if evaluation stopped early.
            while self.ev.scope.with_depth > depth:
                self.ev.scope.pop()

    # -- the paper's eval ---------------------------------------------------
    def _st(self, node: N.Node) -> _NodeState:
        state = self._states.get(id(node))
        if state is None:
            state = _NodeState()
            self._states[id(node)] = state
        return state

    def eval(self, node: N.Node):
        """One value of ``node``, or NOVALUE; resumes where it left off.

        Every produced value charges the shared governor exactly as the
        generator engine's ``_counted`` wrapper does (one step per value
        any node yields), so both engines trip the same budgets —
        steps, wall-clock deadline, cancellation — at the same counts.

        When a tracer is attached (one predicate check otherwise), each
        eval call is bracketed as one *pull* and each produced value as
        one *yield*, at the same points the generator engine's wrapper
        fires — the two engines emit identical event sequences, which
        the parity property tests use as a correctness oracle.
        """
        tracer = self.ev.tracer
        if tracer is None:
            value = self._eval_node(node)
            if value is not NOVALUE:
                self.ev.governor.step()
            return value
        span, t0 = tracer.enter(node)
        try:
            value = self._eval_node(node)
            if value is not NOVALUE:
                self.ev.governor.step()
        except BaseException:
            tracer.exit_error(span, t0)
            raise
        if value is not NOVALUE:
            tracer.exit_yield(span, t0)
        else:
            tracer.exit_end(span, t0)
        return value

    def _eval_node(self, node: N.Node):
        if isinstance(node, N.Constant):
            return self._eval_constant(node)
        if isinstance(node, N.Name):
            return self._eval_name(node)
        if isinstance(node, N.Unary):
            return self._eval_unary(node)
        if isinstance(node, N.Binary):
            return self._eval_binary(node)
        if isinstance(node, N.CompareYield):
            return self._eval_ifcmp(node)
        if isinstance(node, N.To):
            return self._eval_to(node)
        if isinstance(node, N.Alternate):
            return self._eval_alternate(node)
        if isinstance(node, N.Index):
            return self._eval_index(node)
        if isinstance(node, N.If):
            return self._eval_if(node)
        if isinstance(node, N.AndAnd):
            return self._eval_andand(node)
        if isinstance(node, N.OrOr):
            return self._eval_oror(node)
        if isinstance(node, N.Assign):
            return self._eval_assign(node)
        if isinstance(node, N.Imply):
            return self._eval_imply(node)
        if isinstance(node, N.Sequence):
            return self._eval_sequence(node)
        if isinstance(node, N.While):
            return self._eval_while(node)
        if isinstance(node, N.Select):
            return self._eval_select(node)
        if isinstance(node, N.Define):
            return self._eval_define(node)
        if isinstance(node, N.With):
            return self._eval_with(node)
        if isinstance(node, N.Expand):
            return self._eval_dfs(node)
        if isinstance(node, N.Underscore):
            return self._eval_underscore(node)
        raise DuelError(f"state-machine engine: {node.op!r}")  # pragma: no cover

    # case CONSTANT (paper listing, verbatim structure).  Built via the
    # shared helper, not ev.eval, so the value is charged exactly once.
    def _eval_constant(self, node: N.Constant):
        st = self._st(node)
        if st.state == 0:
            st.state = 1
            return self.ev.constant_value(node)
        st.state = 0
        return NOVALUE

    def _eval_name(self, node: N.Name):
        st = self._st(node)
        if st.state == 0:
            st.state = 1
            return self.ev.scope.fetch(node.name)
        st.state = 0
        return NOVALUE

    def _eval_unary(self, node: N.Unary):
        # while (u = eval(kids[0])) yield apply(op, u)
        u = self.eval(node.kid)
        if u is NOVALUE:
            return NOVALUE
        return self._apply_unary(node.operator, u)

    def _apply_unary(self, op: str, u: DuelValue) -> DuelValue:
        apply = self.ev.apply
        table = {"-": apply.negate, "+": apply.plus, "!": apply.lognot,
                 "~": apply.bitnot, "*": apply.deref, "&": apply.addressof}
        return table[op](u)

    # case PLUS, MINUS, MULTIPLY, ... — the numbered listing in the paper.
    def _eval_binary(self, node: N.Binary):
        st = self._st(node)
        while True:
            if st.state == 1:                       # 2: goto bin1
                u = self.eval(node.right)           # 8: bin1
                if u is NOVALUE:                    # 9: goto bin0
                    st.state = 0
                    continue
                return self.ev.apply.binary(        # 10-11: apply, return
                    node.operator, st.value, u)
            st.state = 0                            # 3: bin0
            st.value = self.eval(node.left)         # 4
            if st.value is NOVALUE:                 # 5-6
                return NOVALUE
            st.state = 1                            # 7

    # Assignment: same two-operand machine as PLUS, applying store.
    def _eval_assign(self, node: N.Assign):
        from repro.core.symbolic import PREC_ASSIGN, SymBinary
        st = self._st(node)
        while True:
            if st.state == 1:
                u = self.eval(node.right)
                if u is NOVALUE:
                    st.state = 0
                    continue
                sym = SymBinary(node.operator, st.value.sym, u.sym,
                                PREC_ASSIGN)
                if node.operator == "=":
                    return self.ev.apply.assign(st.value, u, sym)
                return self.ev.apply.compound_assign(
                    node.operator[:-1], st.value, u, sym)
            st.value = self.eval(node.left)
            if st.value is NOVALUE:
                return NOVALUE
            st.state = 1

    # case IFGT, IFGE, ... — yields the left operand when true.
    def _eval_ifcmp(self, node: N.CompareYield):
        st = self._st(node)
        while True:
            if st.state == 1:
                u = self.eval(node.right)
                if u is NOVALUE:
                    st.state = 0
                    continue
                if self.ev.apply.compare_true(node.operator, st.value, u):
                    return st.value
                continue
            st.value = self.eval(node.left)
            if st.value is NOVALUE:
                return NOVALUE
            st.state = 1

    # case TO — states: 0 fresh, 1 have lo / need hi, 2 iterating.
    # Prefix ..e uses states 0 -> 2 with a synthetic lo of 0; postfix
    # e.. uses an unbounded counter.
    def _eval_to(self, node: N.To):
        st = self._st(node)
        from repro.core.values import int_value
        while True:
            if st.state == 2:  # iterating aux = (hi, i); hi None = e..
                hi, i = st.aux
                if hi is None or i <= hi:
                    st.aux = (hi, i + 1)
                    return int_value(i)
                st.state = 0 if node.lo is None else 1
                continue
            if st.state == 1:  # have lo in st.value, pull next hi
                v = self.eval(node.hi) if node.hi is not None else NOVALUE
                if v is NOVALUE:
                    if node.hi is None:  # e.. never gets here (unbounded)
                        st.state = 0
                        return NOVALUE
                    st.state = 0
                    continue  # next lo
                lo = int(self.ev.ops.load(st.value))
                hi = int(self.ev.ops.load(v))
                st.aux = (hi, lo)
                st.state = 2
                continue
            # state 0: fresh (or back for the next lo / next prefix hi)
            if node.lo is None:  # ..e  ==  0 .. e-1
                v = self.eval(node.hi)
                if v is NOVALUE:
                    return NOVALUE
                st.aux = (int(self.ev.ops.load(v)) - 1, 0)
                st.state = 2
                continue
            st.value = self.eval(node.lo)
            if st.value is NOVALUE:
                return NOVALUE
            if node.hi is None:  # e.. unbounded
                st.aux = (None, int(self.ev.ops.load(st.value)))
                st.state = 2
                continue
            st.state = 1

    # case ALTERNATE (paper listing)
    def _eval_alternate(self, node: N.Alternate):
        st = self._st(node)
        if st.state == 0:
            u = self.eval(node.left)
            if u is not NOVALUE:
                return u
            st.state = 1
        v = self.eval(node.right)
        if v is not NOVALUE:
            return v
        st.state = 0
        return NOVALUE

    def _eval_index(self, node: N.Index):
        st = self._st(node)
        while True:
            if st.state == 1:
                u = self.eval(node.index)
                if u is NOVALUE:
                    st.state = 0
                    continue
                return self.ev.apply.index(st.value, u)
            st.value = self.eval(node.base)
            if st.value is NOVALUE:
                return NOVALUE
            st.state = 1

    # case IF
    def _eval_if(self, node: N.If):
        st = self._st(node)
        while True:
            if st.state == 1:  # producing then-branch
                v = self.eval(node.then)
                if v is not NOVALUE:
                    return v
                st.state = 0
                continue
            if st.state == 2:  # producing else-branch
                v = self.eval(node.els)
                if v is not NOVALUE:
                    return v
                st.state = 0
                continue
            u = self.eval(node.cond)
            if u is NOVALUE:
                return NOVALUE
            if self.ev.ops.truthy(u):
                st.state = 1
            elif node.els is not None:
                st.state = 2
            # zero cond without else: loop for the next cond value

    # case ANDAND
    def _eval_andand(self, node: N.AndAnd):
        st = self._st(node)
        while True:
            if st.state == 1:
                v = self.eval(node.right)
                if v is not NOVALUE:
                    return v
                st.state = 0
                continue
            u = self.eval(node.left)
            if u is NOVALUE:
                return NOVALUE
            if self.ev.ops.truthy(u):
                st.state = 1

    # Dual of ANDAND (matching the generator engine's semantics).
    def _eval_oror(self, node: N.OrOr):
        from repro.core.values import rvalue
        from repro.ctype.types import INT
        st = self._st(node)
        while True:
            if st.state == 1:
                v = self.eval(node.right)
                if v is not NOVALUE:
                    return v
                st.state = 0
                continue
            u = self.eval(node.left)
            if u is NOVALUE:
                return NOVALUE
            if self.ev.ops.truthy(u):
                return rvalue(INT, 1, u.sym)
            st.state = 1

    # case IMPLY
    def _eval_imply(self, node: N.Imply):
        st = self._st(node)
        while True:
            if st.state == 1:
                v = self.eval(node.right)
                if v is not NOVALUE:
                    return v
                st.state = 0
                continue
            u = self.eval(node.left)
            if u is NOVALUE:
                return NOVALUE
            st.state = 1

    def _reset(self, node: N.Node) -> None:
        """Reset a subtree's evaluation state (abandon mid-stream)."""
        for n in N.walk(node):
            self._states.pop(id(n), None)

    # case WHILE (paper listing): e2 repeats while all of e1 is non-zero.
    def _eval_while(self, node: N.While):
        st = self._st(node)
        while True:
            if st.state == 1:  # producing body values
                v = self.eval(node.body)
                if v is not NOVALUE:
                    return v
                st.state = 0
                continue
            u = self.eval(node.cond)
            if u is NOVALUE:
                st.state = 1  # every condition value was non-zero
                continue
            if not self.ev.ops.truthy(u):
                self._reset(node.cond)  # abandon the mid-stream cond
                st.state = 0
                return NOVALUE

    # case SELECT — cached source, matching the generator engine (the
    # paper notes the real implementation "avoids the re-evaluation").
    def _eval_select(self, node: N.Select):
        from repro.core.symbolic import with_lowered_fold
        st = self._st(node)
        if st.aux is None:
            st.aux = {"cache": [], "exhausted": False}
        cache, state = st.aux["cache"], st.aux
        while True:
            sel = self.eval(node.selector)
            if sel is NOVALUE:
                if not state["exhausted"]:
                    self._reset(node.seq)
                st.aux = None
                return NOVALUE
            k = int(self.ev.ops.load(sel))
            if k < 0:
                continue
            while len(cache) <= k and not state["exhausted"]:
                v = self.eval(node.seq)
                if v is NOVALUE:
                    state["exhausted"] = True
                else:
                    cache.append(v)
            if k < len(cache):
                value = cache[k]
                if self.ev.options.symbolic:
                    return value.with_sym(with_lowered_fold(value.sym, 2))
                return value

    # case DEFINE (paper listing): alias the name to each value.
    def _eval_define(self, node: N.Define):
        from repro.core.symbolic import SymText
        u = self.eval(node.kid)
        if u is NOVALUE:
            return NOVALUE
        self.ev.scope.alias(node.name, u)
        if self.ev.options.symbolic:
            return u.with_sym(SymText(node.name))
        return u

    # case WITH (paper listing): push(u); yield e2's values; pop().
    # The entry stays pushed *between* eval calls — exactly the
    # coroutine behaviour the paper's push/pop bracket implies.
    def _eval_with(self, node: N.With):
        from repro.core.scope import WithEntry
        st = self._st(node)
        while True:
            if st.state == 1:  # entry pushed, producing e2
                v = self.eval(node.right)
                if v is not NOVALUE:
                    return v
                self.ev.scope.pop()
                st.state = 0
                continue
            u = self.eval(node.left)
            if u is NOVALUE:
                return NOVALUE
            operand = self.ev._with_operand(u, node.arrow)
            if operand is None:
                continue  # NULL under ->: generates nothing
            self.ev.scope.push(WithEntry(operand, arrow=node.arrow,
                                         underscore=u))
            st.state = 1

    # case DFS (paper listing): stack/unstack with the traversal
    # expression generating successors; children of one node are
    # computed eagerly (the inner while in the paper's code).
    def _eval_dfs(self, node: N.Expand):
        from collections import deque
        from repro.core.scope import WithEntry
        st = self._st(node)
        while True:
            if st.state == 1:
                pending, visited = st.aux
                if not pending:
                    st.state = 0
                    st.aux = None
                    continue
                v = pending.popleft() if node.breadth_first else pending.pop()
                operand = self.ev._expand_operand(v)
                children = []
                if operand is not None:
                    self.ev.scope.push(WithEntry(operand, arrow=True,
                                                 chain=True, underscore=v))
                    try:
                        while True:
                            w = self.eval(node.traversal)
                            if w is NOVALUE:
                                break
                            if self.ev._expandable(w, visited, register=True):
                                children.append(w)
                    finally:
                        self.ev.scope.pop()
                if node.breadth_first:
                    pending.extend(children)
                else:
                    pending.extend(reversed(children))
                self.ev.governor.charge("expand")
                return v
            u = self.eval(node.root)
            if u is NOVALUE:
                return NOVALUE
            pending: deque = deque()
            visited: set = set()
            if self.ev._expandable(u, visited, register=True):
                pending.append(u)
            st.aux = (pending, visited)
            st.state = 1

    def _eval_underscore(self, node: N.Underscore):
        st = self._st(node)
        if st.state == 0:
            st.state = 1
            return self.ev.scope.fetch("_")
        st.state = 0
        return NOVALUE

    # case SEQUENCE
    def _eval_sequence(self, node: N.Sequence):
        st = self._st(node)
        if st.state == 0:
            while self.eval(node.left) is not NOVALUE:
                pass
            st.state = 1
        if node.right is None:
            st.state = 0
            return NOVALUE
        v = self.eval(node.right)
        if v is not NOVALUE:
            return v
        st.state = 0
        return NOVALUE
