"""The DUEL evaluator: one Python generator per operator.

The paper describes each operator's semantics as a coroutine with
``yield`` ("The semantics are conveyed equally well by assuming that
eval is a coroutine in which the values of local variables are saved
across calls").  C has no coroutines, so the original hand-compiles
them into an explicit state machine (reproduced in
:mod:`repro.core.statemachine`); Python has them natively, so each
``case`` of the paper's ``eval`` maps onto one generator function here,
frequently line for line.

Every call to :meth:`Evaluator.eval` returns an iterator producing the
node's values lazily; the top-level "drive" loop lives in
:mod:`repro.core.session`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from repro.ctype.declparse import DeclParser, TypeEnv
from repro.ctype.types import (
    ArrayType,
    CHAR,
    CType,
    DOUBLE,
    FunctionType,
    INT,
    LONG,
    PointerType,
    RecordType,
    UINT,
    ULONG,
)
from repro.core import nodes as N
from repro.core.errors import (
    DuelError,
    DuelTargetError,
    DuelTypeError,
)
from repro.core.governor import ResourceGovernor
from repro.target.interface import (AccessTracingBackend, GovernedBackend,
                                    TracingBackend)
from repro.target.memory import TargetMemoryFault
from repro.core.ops import Apply
from repro.core.scope import Scope, WithEntry
from repro.core.symbolic import (
    PREC_ASSIGN,
    PREC_RELATIONAL,
    Sym,
    SymBinary,
    SymCall,
    SymCast,
    SymText,
    with_lowered_fold,
)
from repro.core.values import DuelValue, ValueOps, int_value, lvalue, rvalue

_CONST_TYPES = {
    "int": INT, "uint": UINT, "long": LONG, "ulong": ULONG,
    "double": DOUBLE, "char": CHAR,
}


class _BackendTypedefs(dict):
    """TypeEnv typedef mapping that falls back to the debugger backend."""

    def __init__(self, backend):
        super().__init__()
        self._backend = backend

    def __missing__(self, name: str):
        ctype = self._backend.get_target_typedef(name)
        if ctype is None:
            raise KeyError(name)
        self[name] = ctype
        return ctype

    def __contains__(self, name) -> bool:
        if super().__contains__(name):
            return True
        return self._backend.get_target_typedef(name) is not None


class BackendTypeEnv(TypeEnv):
    """A TypeEnv view over the debugger backend's type tables.

    Lets DUEL casts and declarations name the target's structs, unions,
    enums and typedefs (``(struct symbol *)p``) while still allowing
    debugger-local definitions.
    """

    def __init__(self, backend):
        super().__init__()
        self._backend = backend
        self.typedefs = _BackendTypedefs(backend)  # type: ignore[assignment]

    def struct_tag(self, tag: str):
        found = self._backend.get_target_struct(tag)
        if found is not None:
            return found
        return super().struct_tag(tag)

    def union_tag(self, tag: str):
        found = self._backend.get_target_union(tag)
        if found is not None:
            return found
        return super().union_tag(tag)

    def enum_tag(self, tag: str):
        found = self._backend.get_target_enum(tag)
        if found is not None:
            return found
        return super().enum_tag(tag)

    def is_type_name(self, name: str) -> bool:
        return name in self.typedefs


#: Sentinel: "caller did not override this limit".
_KEEP_DEFAULT = object()


class EvalOptions:
    """Tunable evaluation behaviour (session-level switches).

    All per-query *limits* live on the attached
    :class:`~repro.core.governor.ResourceGovernor`; the historical
    ``max_steps`` / ``max_expand`` attributes remain as read/write
    views onto it.
    """

    def __init__(self, symbolic: bool = True, max_steps: int = 10_000_000,
                 cycle_mode: str = "stop", max_expand: int = 1_000_000,
                 governor: Optional[ResourceGovernor] = None,
                 deadline_ms=_KEEP_DEFAULT, max_lines=_KEEP_DEFAULT):
        #: Compute symbolic derivations (P3 benchmarks toggle this off).
        self.symbolic = symbolic
        #: "stop" skips revisited nodes in -->; "strict" mimics the
        #: original implementation, which "does not handle cycles".
        self.cycle_mode = cycle_mode
        #: Owns every per-query limit, counter, and the cancel token.
        self.governor = governor if governor is not None \
            else ResourceGovernor()
        self.governor.set_limit("steps", max_steps)
        self.governor.set_limit("expand", max_expand)
        if deadline_ms is not _KEEP_DEFAULT:
            self.governor.set_limit("deadline_ms", deadline_ms)
        if max_lines is not _KEEP_DEFAULT:
            self.governor.set_limit("lines", max_lines)

    # -- legacy limit views (tests and callers assign these directly) ------
    @property
    def max_steps(self) -> Optional[int]:
        """Generator-step budget guarding runaway ``e..`` loops."""
        return self.governor.limits["steps"]

    @max_steps.setter
    def max_steps(self, value: Optional[int]) -> None:
        self.governor.set_limit("steps", value)

    @property
    def max_expand(self) -> Optional[int]:
        """Bound on nodes expanded per --> root."""
        return self.governor.limits["expand"]

    @max_expand.setter
    def max_expand(self, value: Optional[int]) -> None:
        self.governor.set_limit("expand", value)


class Evaluator:
    """Evaluates DUEL ASTs against a debugger backend."""

    def __init__(self, backend, options: Optional[EvalOptions] = None):
        self.options = options or EvalOptions()
        self.governor = self.options.governor
        # All target traffic flows through the governed wrapper so
        # call/allocation quotas and the cancel token are enforced at
        # the interface boundary, whatever engine drives the AST; the
        # access wrapper streams (op, address, size) to the memory
        # observatory when a tracer is attached; the tracing wrapper
        # outermost counts reads/writes/calls and attributes them to
        # the active trace span.
        self.governed_backend = GovernedBackend(backend, self.governor)
        self.access_backend = AccessTracingBackend(self.governed_backend)
        self.backend = TracingBackend(self.access_backend)
        #: The active PageCachingBackend, or None (cache off: the hop
        #: is spliced out of the chain entirely, same discipline as
        #: the access tracer).
        self.page_cache = None
        # Start with the access hop spliced out (no tracer attached).
        self.set_access_tracer(None)
        #: The active QueryTracer, or None (tracing off: the only cost
        #: is the predicate check in :meth:`eval`).
        self.tracer = None
        #: Cumulative string-literal cache traffic (metrics registry
        #: reads per-query deltas).
        self.string_cache_hits = 0
        self.string_cache_misses = 0
        self.ops = ValueOps(self.backend)
        self.apply = Apply(self.ops)
        self.scope = Scope(self.backend)
        self.type_env = BackendTypeEnv(self.backend)
        self._decl_parser = DeclParser(self.type_env)
        self._string_cache: dict[bytes, int] = {}
        self._dispatch: dict[type, Callable] = {
            N.Constant: self._eval_constant,
            N.StringLiteral: self._eval_string,
            N.Name: self._eval_name,
            N.Underscore: self._eval_underscore,
            N.Unary: self._eval_unary,
            N.IncDec: self._eval_incdec,
            N.Binary: self._eval_binary,
            N.Assign: self._eval_assign,
            N.CompareYield: self._eval_compare_yield,
            N.Alternate: self._eval_alternate,
            N.To: self._eval_to,
            N.AndAnd: self._eval_andand,
            N.OrOr: self._eval_oror,
            N.If: self._eval_if,
            N.While: self._eval_while,
            N.For: self._eval_for,
            N.Sequence: self._eval_sequence,
            N.Imply: self._eval_imply,
            N.Define: self._eval_define,
            N.Declaration: self._eval_declaration,
            N.With: self._eval_with,
            N.Expand: self._eval_expand,
            N.Select: self._eval_select,
            N.Reduce: self._eval_reduce,
            N.IndexAlias: self._eval_index_alias,
            N.Until: self._eval_until,
            N.Group: self._eval_group,
            N.Index: self._eval_index,
            N.Call: self._eval_call,
            N.Cast: self._eval_cast,
            N.SizeOf: self._eval_sizeof,
            N.FrameExpr: self._eval_frame,
        }

    # -- plumbing ----------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh top-level evaluation (budgets, deadline, token)."""
        self.governor.begin_query()

    @property
    def _steps(self) -> int:
        """Generator steps charged so far this query (legacy view)."""
        return self.governor.steps

    def invalidate_target_caches(self) -> None:
        """Forget target-resident scratch after a target rollback.

        Cached string-literal addresses point into allocations that a
        snapshot restore has undone; keeping them would alias whatever
        the target allocates there next.  The page cache would catch
        the restore by itself on the next read (the memory epoch
        moved), but the explicit flush keeps the contract obvious.
        """
        self._string_cache.clear()
        if self.page_cache is not None:
            self.page_cache.invalidate_all()

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a per-query tracer.

        Propagated to the tracing backend so target traffic lands on
        the span of whichever node is being pulled.
        """
        self.tracer = tracer
        self.backend.tracer = tracer

    def set_access_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a memory-access tracer.

        The tracer receives ``on_access(op, address, size)`` for every
        target read/write at the interface boundary.  Detaching
        splices the access hop out of the hot path entirely: the
        outer counting backend's bound read/write methods are repointed
        straight at the governed backend, so an untraced query pays
        *zero* extra frames for the observatory — rebinding costs a
        few attribute stores per attach/detach, paid only by profiled
        queries.
        """
        access = self.access_backend
        access.tracer = tracer
        outer = self.backend
        if tracer is None:
            outer._inner_get = access._inner_get
            outer._inner_put = access._inner_put
        else:
            outer._inner_get = access.get_target_bytes
            outer._inner_put = access.put_target_bytes

    def set_page_cache(self, policy) -> None:
        """Install (or remove, with None/'off') the target page cache.

        ``policy`` is a :class:`~repro.target.pagecache.PageCachePolicy`
        (or None).  The cache slots *between* the access wrapper and
        the governed backend — the access tracer keeps seeing every
        logical read (the engine-parity oracle and scan classifier
        stay cache-independent) while the cache turns runs of small
        reads into bulk inner ones.  With the cache off nothing is in
        the chain at all: the access wrapper's bound inner methods
        point straight at the governed backend, exactly the pre-cache
        stack.  Requires a backend that exposes the target's memory
        (for the coherence epoch); without one the cache is refused
        and the chain is left untouched.
        """
        from repro.target.pagecache import PageCachingBackend

        access = self.access_backend
        governed = self.governed_backend
        if policy is None or not getattr(policy, "enabled", False):
            self.page_cache = None
            inner = governed
        else:
            memory = getattr(getattr(governed, "program", None),
                             "memory", None)
            if memory is None:
                self.page_cache = None
                inner = governed
            else:
                self.page_cache = PageCachingBackend(
                    governed, policy, lambda: memory.epoch)
                inner = self.page_cache
        access.inner = inner
        access._inner_get = inner.get_target_bytes
        access._inner_put = inner.put_target_bytes
        # Re-run the access splice so the outer counter's bound
        # methods point at the right next hop.
        self.set_access_tracer(access.tracer)

    def eval(self, node: N.Node) -> Iterator[DuelValue]:
        """All values of ``node``, lazily (the paper's ``eval``)."""
        handler = self._dispatch.get(type(node))
        if handler is None:  # pragma: no cover - parser emits known nodes
            raise DuelError(f"no evaluator for {node.op}")
        tracer = self.tracer
        if tracer is None:
            return self._counted(handler(node))
        return tracer.wrap(node, self._counted(handler(node)))

    def _counted(self, it: Iterator[DuelValue]) -> Iterator[DuelValue]:
        # Inlined ResourceGovernor.step(): this wrapper runs once per
        # value produced by every node, so a method call here is the
        # single largest governance cost (~20% on the P3 benchmark).
        governor = self.governor
        for value in it:
            n = governor.steps + 1
            governor.steps = n
            if n >= governor._next_check:
                governor.step_check()
            yield value

    def parse_type(self, text: str) -> CType:
        return self._decl_parser.parse_type(text)

    def is_type_name(self, name: str) -> bool:
        return self.type_env.is_type_name(name)

    def _sym(self, make: Callable[[], Sym]) -> Sym:
        """Build a symbolic expression unless disabled (ablation P3)."""
        if self.options.symbolic:
            self.governor.sym_node()
            return make()
        return _NO_SYM

    # ==================================================================
    # leaves
    # ==================================================================
    def constant_value(self, node: N.Constant) -> DuelValue:
        """The single value of a constant node (shared by both engines)."""
        ctype = _CONST_TYPES[node.type_hint]
        sym = self._sym(lambda: SymText(node.text or str(node.value)))
        return rvalue(ctype, node.value, sym)

    def _eval_constant(self, node: N.Constant):
        yield self.constant_value(node)

    def _eval_string(self, node: N.StringLiteral):
        address = self._string_cache.get(node.value)
        if address is None:
            self.string_cache_misses += 1
            try:
                address = self.backend.alloc_target_space(
                    len(node.value) + 1)
                self.backend.put_target_bytes(address, node.value + b"\0")
            except TargetMemoryFault as fault:
                raise DuelTargetError(
                    f"cannot place string literal in target: {fault}",
                    fault) from fault
            self._string_cache[node.value] = address
        else:
            self.string_cache_hits += 1
        sym = self._sym(lambda: SymText(node.text or '"..."'))
        yield rvalue(PointerType(CHAR), address, sym)

    def _eval_name(self, node: N.Name):
        yield self.scope.fetch(node.name)

    def _eval_underscore(self, node: N.Underscore):
        yield self.scope.fetch("_")

    # ==================================================================
    # unary / binary C operators (generator-lifted pointwise)
    # ==================================================================
    def _eval_unary(self, node: N.Unary):
        for u in self.eval(node.kid):
            if node.operator == "-":
                yield self.apply.negate(u)
            elif node.operator == "+":
                yield self.apply.plus(u)
            elif node.operator == "!":
                yield self.apply.lognot(u)
            elif node.operator == "~":
                yield self.apply.bitnot(u)
            elif node.operator == "*":
                yield self.apply.deref(u)
            elif node.operator == "&":
                yield self.apply.addressof(u)
            else:  # pragma: no cover
                raise DuelError(f"unknown unary {node.operator!r}")

    def _eval_incdec(self, node: N.IncDec):
        for u in self.eval(node.kid):
            sym = self._sym(lambda: _incdec_sym(node, u.sym))
            yield self.apply.incdec(node.operator, u, node.postfix, sym)

    def _eval_binary(self, node: N.Binary):
        # The paper's PLUS/MINUS/... case: all combinations of operand
        # values, one apply per pair.
        for u in self.eval(node.left):
            for v in self.eval(node.right):
                yield self.apply.binary(node.operator, u, v)

    def _eval_assign(self, node: N.Assign):
        for u in self.eval(node.left):
            for v in self.eval(node.right):
                sym = self._sym(lambda: SymBinary(
                    node.operator, u.sym, v.sym, PREC_ASSIGN))
                if node.operator == "=":
                    yield self.apply.assign(u, v, sym)
                else:
                    yield self.apply.compound_assign(
                        node.operator[:-1], u, v, sym)

    def _eval_compare_yield(self, node: N.CompareYield):
        # Paper IFGT...: yields the *left* operand when the test holds.
        for u in self.eval(node.left):
            for v in self.eval(node.right):
                if self.apply.compare_true(node.operator, u, v):
                    yield u

    # ==================================================================
    # generators proper
    # ==================================================================
    def _eval_alternate(self, node: N.Alternate):
        # case ALTERNATE: all of e1's values, then all of e2's.
        yield from self.eval(node.left)
        yield from self.eval(node.right)

    def _eval_to(self, node: N.To):
        # case TO: integers from e1 to e2 inclusive; ..e is 0..e-1 and
        # e.. is unbounded.
        if node.lo is None:
            for v in self.eval(node.hi):
                hi = self._int_of(v, "..e")
                for i in range(0, hi):
                    yield int_value(i)
            return
        if node.hi is None:
            for u in self.eval(node.lo):
                lo = self._int_of(u, "e..")
                i = lo
                while True:
                    yield int_value(i)
                    i += 1
            return
        for u in self.eval(node.lo):
            for v in self.eval(node.hi):
                lo = self._int_of(u, "e1..e2")
                hi = self._int_of(v, "e1..e2")
                for i in range(lo, hi + 1):
                    yield int_value(i)

    def _int_of(self, v: DuelValue, where: str) -> int:
        loaded = self.ops.load(v)
        if not v.ctype.strip_typedefs().is_integer:
            raise DuelTypeError(f"non-integer operand of {where}",
                                v.sym.render())
        return int(loaded)

    def _eval_andand(self, node: N.AndAnd):
        # case ANDAND: e2's values for each non-zero value of e1.
        for u in self.eval(node.left):
            if self.ops.truthy(u):
                yield from self.eval(node.right)

    def _eval_oror(self, node: N.OrOr):
        # Dual of ANDAND, consistent with C when single-valued: e1's
        # non-zero values pass through as 1; zero values of e1 produce
        # e2's values.
        for u in self.eval(node.left):
            if self.ops.truthy(u):
                yield rvalue(INT, 1, u.sym)
            else:
                yield from self.eval(node.right)

    def _eval_if(self, node: N.If):
        # case IF.
        for u in self.eval(node.cond):
            if self.ops.truthy(u):
                yield from self.eval(node.then)
            elif node.els is not None:
                yield from self.eval(node.els)

    def _eval_while(self, node: N.While):
        # case WHILE: e2 repeats as long as every value of e1 is non-zero.
        while True:
            for u in self.eval(node.cond):
                if not self.ops.truthy(u):
                    return
            yield from self.eval(node.body)

    def _eval_for(self, node: N.For):
        # for is while with init/step, both drained for side effects.
        if node.init is not None:
            _drain(self.eval(node.init))
        while True:
            if node.cond is not None:
                stop = False
                for u in self.eval(node.cond):
                    if not self.ops.truthy(u):
                        stop = True
                        break
                if stop:
                    return
            yield from self.eval(node.body)
            if node.step is not None:
                _drain(self.eval(node.step))

    def _eval_sequence(self, node: N.Sequence):
        # case SEQUENCE: drain e1, then e2's values.
        _drain(self.eval(node.left))
        if node.right is not None:
            yield from self.eval(node.right)

    def _eval_imply(self, node: N.Imply):
        # case IMPLY: e2's values for each value of e1.
        for _u in self.eval(node.left):
            yield from self.eval(node.right)

    def _eval_define(self, node: N.Define):
        # case DEFINE: alias the name to each value in turn.
        for u in self.eval(node.kid):
            self.scope.alias(node.name, u)
            yield u.with_sym(
                SymText(node.name) if self.options.symbolic else _NO_SYM)

    def _eval_declaration(self, node: N.Declaration):
        # "Duel declarations ... establish aliases to newly allocated
        # target locations."  Produces no values.
        for decl in self._decl_parser.parse(node.text):
            if decl.is_typedef:
                continue
            size = max(decl.ctype.size, 1)
            try:
                address = self.backend.alloc_target_space(size)
                self.backend.put_target_bytes(address, bytes(size))
            except TargetMemoryFault as fault:
                raise DuelTargetError(
                    f"cannot allocate debugger variable "
                    f"{decl.name!r}: {fault}", fault) from fault
            self.scope.alias(decl.name,
                             lvalue(decl.ctype, address, SymText(decl.name)))
        return
        yield  # pragma: no cover - makes this a generator

    # ==================================================================
    # with / expansion
    # ==================================================================
    def _with_operand(self, u: DuelValue, arrow: bool) -> Optional[DuelValue]:
        """The value pushed for e1 in e1.e2 / e1->e2 / e1-->e2.

        A NULL pointer on the left of ``->`` generates nothing (the
        paper's ``hash[0..1023]->scope = 0 ;`` clears the head of each
        *non-empty* list); a non-null but unmapped pointer raises the
        paper's "Illegal memory reference" error.
        """
        if arrow:
            stripped = u.ctype.strip_typedefs()
            if isinstance(stripped, ArrayType):
                # Arrays of records: a->f behaves like a[0].f in C.
                return lvalue(stripped.element, u.address, u.sym)
            if (isinstance(stripped, PointerType)
                    and int(self.ops.load(u)) == 0):
                return None
            return self.apply.deref(u, sym=u.sym, pattern="x->y")
        return u

    def _eval_with(self, node: N.With):
        # case WITH: evaluate e2 with e1's value pushed on the
        # name-resolution stack.
        for u in self.eval(node.left):
            operand = self._with_operand(u, node.arrow)
            if operand is None:
                continue
            self.scope.push(WithEntry(operand, arrow=node.arrow,
                                      underscore=u))
            try:
                yield from self.eval(node.right)
            finally:
                self.scope.pop()

    def _eval_expand(self, node: N.Expand):
        # case DFS (and the BFS extension): expand the data structure
        # from each root, using e2 to generate successors.
        for u in self.eval(node.root):
            yield from self._expand_from(u, node)

    def _expand_from(self, root: DuelValue, node: N.Expand):
        pending: deque[DuelValue] = deque()
        visited: set[tuple] = set()
        if self._expandable(root, visited, register=True):
            pending.append(root)
        while pending:
            v = pending.popleft() if node.breadth_first else pending.pop()
            children = []
            operand = self._expand_operand(v)
            if operand is not None:
                self.scope.push(WithEntry(operand, arrow=True, chain=True,
                                          underscore=v))
                try:
                    for w in self.eval(node.traversal):
                        if self._expandable(w, visited, register=True):
                            children.append(w)
                finally:
                    self.scope.pop()
            if node.breadth_first:
                pending.extend(children)
            else:
                pending.extend(reversed(children))
            self.governor.charge("expand")
            yield v

    def _expand_operand(self, v: DuelValue) -> Optional[DuelValue]:
        stripped = v.ctype.strip_typedefs()
        if isinstance(stripped, PointerType):
            target = stripped.target.strip_typedefs()
            try:
                size = max(target.size, 1)
            except TypeError:
                return None
            address = int(self.ops.load(v))
            if address == 0 or not self.backend.is_mapped(address, size):
                return None
            return lvalue(stripped.target, address, v.sym)
        if isinstance(stripped, RecordType) and v.is_lvalue:
            return v
        return None

    def _expandable(self, v: DuelValue, visited: set, register: bool) -> bool:
        """Non-null, mapped, and (in "stop" mode) not yet visited."""
        stripped = v.ctype.strip_typedefs()
        if isinstance(stripped, PointerType):
            address = int(self.ops.load(v))
            if address == 0:
                return False
            target = stripped.target.strip_typedefs()
            try:
                size = max(target.size, 1)
            except TypeError:
                size = 1
            if not self.backend.is_mapped(address, size):
                return False
            key = ("ptr", address)
        elif isinstance(stripped, RecordType) and v.is_lvalue:
            key = ("rec", v.address)
        elif stripped.is_integer or stripped.is_float:
            # Scalars terminate expansion unless non-null pointer-like.
            return False
        else:
            return False
        if self.options.cycle_mode == "stop":
            if key in visited:
                return False
            if register:
                visited.add(key)
        return True

    # ==================================================================
    # sequence operators
    # ==================================================================
    def _eval_select(self, node: N.Select):
        # case SELECT: the e2-th (0-based) values of e1's sequence.  The
        # paper notes the real implementation "avoids the re-evaluation
        # of e2 when possible": we pull e1 once and cache.
        cache: list[DuelValue] = []
        source = self.eval(node.seq)
        exhausted = False
        for sel in self.eval(node.selector):
            k = self._int_of(sel, "e1[[e2]]")
            if k < 0:
                continue
            while len(cache) <= k and not exhausted:
                try:
                    cache.append(next(source))
                except StopIteration:
                    exhausted = True
            if k < len(cache):
                v = cache[k]
                if self.options.symbolic:
                    yield v.with_sym(with_lowered_fold(v.sym, 2))
                else:
                    yield v

    def _eval_reduce(self, node: N.Reduce):
        # Reductions substitute their computed value in the symbolic
        # output, like generators do (the paper shows ``#/...`` printing
        # a bare ``5``).
        values = self.eval(node.kid)
        if node.operator == "#":
            count = sum(1 for _ in values)
            yield int_value(count)
            return
        if node.operator in ("&&", "||"):
            if node.operator == "&&":
                result = all(self.ops.truthy(v) for v in values)
            else:
                result = any(self.ops.truthy(v) for v in values)
            yield int_value(int(result))
            return
        total = None
        ctype: CType = INT
        for v in values:
            loaded = self.ops.load_value(v)
            if not loaded.ctype.is_arithmetic:
                raise DuelTypeError(
                    f"non-arithmetic value in {node.operator}/ reduction",
                    v.sym.render())
            x = loaded.value
            if total is None:
                total, ctype = x, loaded.ctype
            elif node.operator == "+":
                total = total + x
            elif node.operator == "*":
                total = total * x
            elif node.operator == "<?":
                total = min(total, x)
            elif node.operator == ">?":
                total = max(total, x)
            if loaded.ctype.strip_typedefs().is_float:
                ctype = DOUBLE
        if total is None:
            # Empty sequence: count-like identity (0 for +, 1 for *).
            total = 1 if node.operator == "*" else 0
        sym = self._sym(lambda: SymText(str(total)))
        yield rvalue(ctype, total, sym)

    def _eval_index_alias(self, node: N.IndexAlias):
        # e#n: n aliases the 0-based position of each value.
        for position, v in enumerate(self.eval(node.kid)):
            self.scope.alias(node.name, int_value(position))
            yield v

    def _eval_until(self, node: N.Until):
        # e@c: e's values until the guard fires (exclusive).  A constant
        # guard (possibly signed) means "stop at the first value equal
        # to c"; any other guard is evaluated in the value's scope and
        # fires when non-zero.
        constant = _guard_constant(node.guard)
        for v in self.eval(node.kid):
            if constant is not None:
                loaded = self.ops.load(v)
                if loaded == constant:
                    return
            else:
                self.scope.push(WithEntry(v, arrow=False))
                try:
                    fired = any(self.ops.truthy(g)
                                for g in self.eval(node.guard))
                finally:
                    self.scope.pop()
                if fired:
                    return
            yield v

    def _eval_group(self, node: N.Group):
        # {e}: value substituted for symbol in the display.
        formatter = getattr(self, "formatter", None)
        if formatter is None:
            from repro.core.format import ValueFormatter
            formatter = ValueFormatter(self.ops)
            self.formatter = formatter
        for v in self.eval(node.kid):
            if self.options.symbolic:
                yield v.with_sym(SymText(formatter.format(v)))
            else:
                yield v

    # ==================================================================
    # indexing / calls / casts
    # ==================================================================
    def _eval_index(self, node: N.Index):
        for u in self.eval(node.base):
            for v in self.eval(node.index):
                yield self.apply.index(u, v)

    def _eval_call(self, node: N.Call):
        # Generator arguments: "the function is called repeatedly for
        # all combinations of values".
        for f in self.eval(node.func):
            yield from self._call_combinations(f, node.args, [])

    def _call_combinations(self, f: DuelValue, args: tuple[N.Node, ...],
                           got: list[DuelValue]):
        if len(got) == len(args):
            yield self._invoke(f, got)
            return
        for v in self.eval(args[len(got)]):
            got.append(v)
            yield from self._call_combinations(f, args, got)
            got.pop()

    def _invoke(self, f: DuelValue, args: list[DuelValue]) -> DuelValue:
        ftype = f.ctype.strip_typedefs()
        if isinstance(ftype, PointerType) and ftype.target.is_function:
            ftype = ftype.target.strip_typedefs()
        if not isinstance(ftype, FunctionType):
            raise DuelTypeError(
                f"called object is not a function ({f.ctype.name()})",
                f.sym.render())
        raw_args = []
        for index, a in enumerate(args):
            loaded = self.ops.load_value(a)
            if index < len(ftype.params):
                from repro.ctype.convert import convert_value
                raw_args.append(convert_value(
                    loaded.value, loaded.ctype, ftype.params[index]))
            else:
                raw_args.append(loaded.value)
        target = f.func_name if f.func_name else None
        if target is None:
            if f.is_lvalue:
                target = int(self.ops.load(f))
            else:
                target = int(f.value)
        try:
            result = self.backend.call_target_func(target, raw_args)
        except TargetMemoryFault as fault:
            # A refused/failed target call is a query error, not a
            # debugger crash: surface it as a DuelError so sessions
            # report it (with any partial results) and stay usable.
            raise DuelTargetError(
                f"target call failed: {fault}", fault) from fault
        sym = self._sym(lambda: SymCall(f.sym, tuple(a.sym for a in args)))
        if ftype.result.is_void:
            return rvalue(ftype.result, None, sym)
        return rvalue(ftype.result, result, sym)

    def _eval_cast(self, node: N.Cast):
        ctype = self.parse_type(node.type_text)
        for u in self.eval(node.kid):
            sym = self._sym(lambda: SymCast(node.type_text, u.sym))
            yield self.apply.cast(ctype, u, sym)

    def _eval_sizeof(self, node: N.SizeOf):
        if node.type_text is not None:
            ctype = self.parse_type(node.type_text)
            sym = self._sym(lambda: SymText(f"sizeof({node.type_text})"))
            yield self.apply.sizeof(ctype, sym)
            return
        for u in self.eval(node.kid):
            sym = self._sym(lambda: SymText(f"sizeof {u.sym.render()}"))
            yield self.apply.sizeof(u.ctype, sym)

    def _eval_frame(self, node: N.FrameExpr):
        # Extension (paper Discussion: exploring "unnamed" state such as
        # locals of every active frame): frame(i) yields a pseudo-value
        # whose scope is frame i.  Used as frame(i).x via with.
        for u in self.eval(node.index):
            index = self._int_of(u, "frame(e)")
            count = self.backend.frames_count()
            if not 0 <= index < count:
                continue
            yield _FrameValue(self.backend, index,
                              self._sym(lambda: SymText(f"frame({index})")))


class _FrameValue(DuelValue):
    """Pseudo-value representing one stack frame (for frame(i).x)."""

    def __init__(self, backend, index: int, sym: Sym):
        super().__init__(ctype=INT, sym=sym, value=index)
        self.backend = backend
        self.frame_index = index

    def frame_variable(self, name: str):
        return self.backend.get_frame_variable(self.frame_index, name)


_NO_SYM = SymText("?")


def _drain(it: Iterator) -> None:
    for _ in it:
        pass


def _guard_constant(node: N.Node):
    """The literal value of an @-guard, or None if it's an expression."""
    if isinstance(node, N.Constant):
        return node.value
    if (isinstance(node, N.Unary) and node.operator in ("-", "+")
            and isinstance(node.kid, N.Constant)):
        value = node.kid.value
        return -value if node.operator == "-" else value
    return None


def _incdec_sym(node: N.IncDec, operand_sym: Sym) -> Sym:
    if node.postfix:
        return SymText(operand_sym.render() + node.operator, PREC_RELATIONAL)
    return SymText(node.operator + operand_sym.render(), PREC_RELATIONAL)


