"""Symbolic values: the derivation expressions DUEL prints.

Every value produced during evaluation carries a *symbolic value* — "a
legal Duel expression that indicates how the value was computed" (paper
§Implementation).  The rules reproduced here:

* a variable's symbolic value is its name;
* most binary operators produce ``a op b`` from the operands' symbolics;
* generators substitute their *current iteration value* (``x[..10]``
  prints as ``x[3]``, not ``x[i]``);
* ``{e}`` overrides the default and displays e's value;
* repeated ``->a->a`` chains from ``-->`` expansions fold into
  ``-->a[[k]]`` notation.

The paper's two display examples of ``-->`` chains disagree on when to
fold (``hash[0]->next->next->next->scope`` prints unfolded at depth 3,
while select output prints ``head-->next[[3]]->value``); we reconcile
them with a fold threshold (default 4) that ``[[...]]`` select lowers
to 2 on values it passes through, matching every output in the paper.

Symbolics are small lazy trees so that folding decisions can be made at
render time; rendering is the expensive half of DUEL evaluation (paper:
"the computation of the symbolic value is more expensive than computing
the result"), which benchmark P3 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Default chain-fold threshold (see module docstring).
DEFAULT_FOLD = 4

# Precedence levels used for parenthesisation when composing symbolics.
# Larger binds tighter.  These mirror the DUEL grammar.
PREC_SEQUENCE = 1
PREC_IMPLY = 2
PREC_ASSIGN = 3
PREC_COND = 4
PREC_TO = 5
PREC_OROR = 6
PREC_ANDAND = 7
PREC_BITOR = 8
PREC_BITXOR = 9
PREC_BITAND = 10
PREC_EQUALITY = 11
PREC_RELATIONAL = 12
PREC_SHIFT = 13
PREC_ADDITIVE = 14
PREC_MULTIPLICATIVE = 15
PREC_UNARY = 16
PREC_POSTFIX = 17
PREC_PRIMARY = 18


class Sym:
    """Base class of symbolic-expression nodes."""

    prec: int = PREC_PRIMARY

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        raise NotImplementedError

    def rendered(self, fold: int, min_prec: int) -> str:
        """Render, parenthesised if this node binds looser than required."""
        text = self.render(fold)
        if self.prec < min_prec:
            return f"({text})"
        return text

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.render()!r}>"


@dataclass(frozen=True)
class SymText(Sym):
    """A literal fragment: names, constants, substituted values."""

    text: str
    prec: int = PREC_PRIMARY

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        return self.text


@dataclass(frozen=True)
class SymBinary(Sym):
    """``left op right`` with C-style parenthesisation, no spaces.

    The paper prints ``4+0*5 = 4`` and ``x[1]==7 = 0`` — operators join
    their operands without whitespace.
    """

    op: str
    left: Sym
    right: Sym
    prec: int = PREC_ADDITIVE

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        # Left-associative rendering: the right operand needs one level
        # more binding, the left operand this node's own level.
        return (self.left.rendered(fold, self.prec)
                + self.op
                + self.right.rendered(fold, self.prec + 1))


@dataclass(frozen=True)
class SymUnary(Sym):
    """Prefix operator application, e.g. ``-x`` or ``*p``."""

    op: str
    operand: Sym
    prec: int = PREC_UNARY

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        return self.op + self.operand.rendered(fold, PREC_UNARY)


@dataclass(frozen=True)
class SymIndex(Sym):
    """``base[index]``."""

    base: Sym
    index: Sym
    prec: int = PREC_POSTFIX

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        return (self.base.rendered(fold, PREC_POSTFIX)
                + "[" + self.index.render(fold) + "]")


@dataclass(frozen=True)
class SymField(Sym):
    """``base.name`` or ``base->name``."""

    base: Sym
    name: str
    arrow: bool = True
    prec: int = PREC_POSTFIX

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        joiner = "->" if self.arrow else "."
        return self.base.rendered(fold, PREC_POSTFIX) + joiner + self.name


@dataclass
class SymChain(Sym):
    """A ``-->`` expansion chain: ``base`` followed by ``count``
    applications of ``->field``.

    Rendered either expanded (``base->next->next``) or folded
    (``base-->next[[2]]``) depending on the fold threshold.  ``fold_at``
    overrides the render-time threshold; select sets it to 2.
    """

    base: Sym
    fieldname: str
    count: int
    fold_at: Optional[int] = None
    prec: int = field(default=PREC_POSTFIX, init=False)

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        threshold = self.fold_at if self.fold_at is not None else fold
        base = self.base.rendered(fold, PREC_POSTFIX)
        if self.count == 0:
            return base
        if self.count >= threshold:
            return f"{base}-->{self.fieldname}[[{self.count}]]"
        return base + "->" + "->".join([self.fieldname] * self.count)


@dataclass(frozen=True)
class SymCall(Sym):
    """``f(a, b, ...)``."""

    func: Sym
    args: tuple[Sym, ...]
    prec: int = PREC_POSTFIX

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        inner = ", ".join(a.render(fold) for a in self.args)
        return self.func.rendered(fold, PREC_POSTFIX) + "(" + inner + ")"


@dataclass(frozen=True)
class SymCast(Sym):
    """``(type)operand``."""

    type_text: str
    operand: Sym
    prec: int = PREC_UNARY

    def render(self, fold: int = DEFAULT_FOLD) -> str:
        return f"({self.type_text})" + self.operand.rendered(fold, PREC_UNARY)


def text(value: str, prec: int = PREC_PRIMARY) -> SymText:
    """Shorthand constructor for :class:`SymText`."""
    return SymText(value, prec)


def chain_of(sym: Sym) -> Optional[SymChain]:
    """Find the SymChain at the spine of a symbolic tree, if any.

    Select (``[[...]]``) uses this to lower the fold threshold on the
    dfs chain inside expressions like ``head-->next->value[[3,5]]``.
    """
    node = sym
    while True:
        if isinstance(node, SymChain):
            return node
        if isinstance(node, SymField):
            node = node.base
        elif isinstance(node, SymIndex):
            node = node.base
        else:
            return None


def with_lowered_fold(sym: Sym, fold_at: int = 2) -> Sym:
    """Clone ``sym`` with any spine SymChain's fold threshold lowered."""
    if isinstance(sym, SymChain):
        return SymChain(sym.base, sym.fieldname, sym.count, fold_at)
    if isinstance(sym, SymField):
        return SymField(with_lowered_fold(sym.base, fold_at),
                        sym.name, sym.arrow)
    if isinstance(sym, SymIndex):
        return SymIndex(with_lowered_fold(sym.base, fold_at), sym.index)
    return sym


def extend_chain(parent: Sym, fieldname: str) -> Sym:
    """Extend a dfs chain by one ``->fieldname`` step.

    ``head`` becomes ``head->next`` becomes ``head->next->next`` and so
    on, represented compactly as a SymChain so rendering can fold.
    A traversal that alternates fields (``(left,right)``) produces
    SymField spines instead, which render as ``root->left->right``.
    """
    if isinstance(parent, SymChain) and parent.fieldname == fieldname:
        return SymChain(parent.base, fieldname, parent.count + 1,
                        parent.fold_at)
    if isinstance(parent, SymChain) and parent.count == 0:
        return SymChain(parent.base, fieldname, 1)
    if isinstance(parent, (SymText, SymIndex, SymField, SymChain)):
        if not isinstance(parent, SymChain):
            return SymChain(parent, fieldname, 1)
    return SymField(parent, fieldname, arrow=True)
