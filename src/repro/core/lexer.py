"""Hand-written lexer for DUEL (the paper: "yacc-based parser and the
hand-written lexer").

Tokenises the full DUEL vocabulary: the C token set plus ``..``,
``-->`` (and the ``-->>`` BFS extension), ``[[``/``]]``, the
conditional-yield comparisons ``>? >=? <? <=? ==? !=?``, ``:=``,
``=>``, ``@``, ``#``, ``#/`` (count) and the APL-style reductions
``+/ */ &&/ ||/ <?/ >?/``, and ``{``/``}`` grouping.  Comments start
with ``##`` (DUEL reserves ``#``; in gdb the paper's one-line change
lets ``#`` through).

Tricky cases handled here:

* ``1..3`` lexes as ``1`` ``..`` ``3`` (not the float ``1.``);
* ``a[b[c[0]]]`` — nested ``]`` pairs can lex as ``]]``; the parser
  splits those back (see :meth:`TokenStream.split_rbracket`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import DuelSyntaxError

KEYWORDS = frozenset(
    "if else while for sizeof "
    "void char short int long signed unsigned float double _Bool "
    "struct union enum const volatile typedef static extern register "
    "auto".split()
)

#: Type-introducing keywords (used by the parser for casts/declarations).
TYPE_KEYWORDS = frozenset(
    "void char short int long signed unsigned float double _Bool "
    "struct union enum const volatile".split()
)

# Longest-match-first operator table.
OPERATORS = [
    "-->>", "<<=", ">>=", "==?", "!=?", "<=?", ">=?",
    "-->", "<?/", ">?/", "&&/", "||/",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "->", "..", "=>", ":=", "[[", "]]",
    "<?", ">?", "#/", "+/", "*/",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "^", "&", "|",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "@", "#", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source span (for decl/cast slicing)."""

    kind: str  # "num" | "fnum" | "char" | "string" | "name" | "op" | "eof"
    text: str
    start: int
    end: int

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind},{self.text!r})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "a": "\a", "b": "\b",
            "f": "\f", "v": "\v", "0": "\0", "\\": "\\", "'": "'",
            '"': '"', "?": "?"}


def tokenize(text: str) -> list[Token]:
    """Lex a DUEL input line into tokens (plus a trailing EOF token)."""
    tokens: list[Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if text.startswith("##", pos):
            break  # comment runs to end of line
        start = pos
        if ch.isdigit() or (ch == "." and pos + 1 < n and text[pos + 1].isdigit()):
            pos, token = _lex_number(text, pos)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            tokens.append(Token("name", text[start:pos], start, pos))
            continue
        if ch == "'":
            pos, token = _lex_char(text, pos)
            tokens.append(token)
            continue
        if ch == '"':
            pos, token = _lex_string(text, pos)
            tokens.append(token)
            continue
        for op in OPERATORS:
            if text.startswith(op, pos):
                pos += len(op)
                tokens.append(Token("op", op, start, pos))
                break
        else:
            raise DuelSyntaxError(f"bad character {ch!r}", pos, text)
    tokens.append(Token("eof", "", n, n))
    return tokens


def _lex_number(text: str, pos: int) -> tuple[int, Token]:
    start = pos
    n = len(text)
    if text.startswith(("0x", "0X"), pos):
        pos += 2
        while pos < n and (text[pos].isdigit()
                           or text[pos].lower() in "abcdef"):
            pos += 1
        body = text[start:pos]
        pos = _int_suffix(text, pos)
        return pos, Token("num", text[start:pos], start, pos)
    while pos < n and text[pos].isdigit():
        pos += 1
    is_float = False
    # "1..3" must not lex "1." as a float.
    if (pos < n and text[pos] == "."
            and not text.startswith("..", pos)):
        is_float = True
        pos += 1
        while pos < n and text[pos].isdigit():
            pos += 1
    if pos < n and text[pos] in "eE":
        look = pos + 1
        if look < n and text[look] in "+-":
            look += 1
        if look < n and text[look].isdigit():
            is_float = True
            pos = look
            while pos < n and text[pos].isdigit():
                pos += 1
    if is_float:
        return pos, Token("fnum", text[start:pos], start, pos)
    pos = _int_suffix(text, pos)
    return pos, Token("num", text[start:pos], start, pos)


def _int_suffix(text: str, pos: int) -> int:
    n = len(text)
    while pos < n and text[pos] in "uUlL":
        pos += 1
    return pos


def _lex_char(text: str, pos: int) -> tuple[int, Token]:
    start = pos
    pos += 1  # opening quote
    n = len(text)
    if pos >= n:
        raise DuelSyntaxError("unterminated character constant", start, text)
    if text[pos] == "\\":
        pos = _skip_escape(text, pos)
    else:
        pos += 1
    if pos >= n or text[pos] != "'":
        raise DuelSyntaxError("unterminated character constant", start, text)
    pos += 1
    return pos, Token("char", text[start:pos], start, pos)


def _lex_string(text: str, pos: int) -> tuple[int, Token]:
    start = pos
    pos += 1
    n = len(text)
    while pos < n and text[pos] != '"':
        if text[pos] == "\\":
            pos = _skip_escape(text, pos)
        else:
            pos += 1
    if pos >= n:
        raise DuelSyntaxError("unterminated string literal", start, text)
    pos += 1
    return pos, Token("string", text[start:pos], start, pos)


def _skip_escape(text: str, pos: int) -> int:
    pos += 1  # backslash
    n = len(text)
    if pos >= n:
        raise DuelSyntaxError("dangling backslash", pos - 1, text)
    if text[pos] == "x":
        pos += 1
        while pos < n and (text[pos].isdigit() or text[pos].lower() in "abcdef"):
            pos += 1
        return pos
    if text[pos].isdigit():
        count = 0
        while pos < n and text[pos].isdigit() and count < 3:
            pos += 1
            count += 1
        return pos
    return pos + 1


def unescape(body: str) -> str:
    """Interpret C escape sequences in a char/string literal body."""
    out = []
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        i += 1
        ch = body[i]
        if ch == "x":
            i += 1
            start = i
            while i < n and (body[i].isdigit() or body[i].lower() in "abcdef"):
                i += 1
            out.append(chr(int(body[start:i], 16) & 0xFF))
            continue
        if ch.isdigit():
            start = i
            while i < n and body[i].isdigit() and i - start < 3:
                i += 1
            out.append(chr(int(body[start:i], 8) & 0xFF))
            continue
        out.append(_ESCAPES.get(ch, ch))
        i += 1
    return "".join(out)


class TokenStream:
    """Cursor over a token list with pushback and ``]]`` splitting."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.i = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.i + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.i += 1
        return token

    def accept(self, *ops: str) -> Optional[Token]:
        if self.peek().is_op(*ops):
            return self.next()
        return None

    def expect(self, op: str) -> Token:
        token = self.peek()
        if op == "]" and token.is_op("]]"):
            return self.split_rbracket()
        if op == "[" and token.is_op("[["):
            return self.split_lbracket()
        if not token.is_op(op):
            raise DuelSyntaxError(
                f"expected {op!r}, found {token.text or 'end of input'!r}",
                token.start, self.text)
        return self.next()

    def split_rbracket(self) -> Token:
        """Split a ``]]`` token into two ``]`` (for ``a[b[0]]``)."""
        token = self.peek()
        assert token.is_op("]]")
        first = Token("op", "]", token.start, token.start + 1)
        rest = Token("op", "]", token.start + 1, token.end)
        self.tokens[self.i] = rest
        return first

    def split_lbracket(self) -> Token:
        token = self.peek()
        assert token.is_op("[[")
        first = Token("op", "[", token.start, token.start + 1)
        rest = Token("op", "[", token.start + 1, token.end)
        self.tokens[self.i] = rest
        return first

    @property
    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    def error(self, message: str) -> DuelSyntaxError:
        token = self.peek()
        return DuelSyntaxError(message, token.start, self.text)
