"""Parser for DUEL's concrete syntax.

The paper uses a yacc grammar; this is the equivalent recursive-descent
/ precedence-climbing parser.  Precedence, loosest to tightest:

    ;                            sequence
    ,                            alternate
    =>                           imply
    =  op=  :=                   assignment / alias definition (right)
    ?:                           conditional
    ..                           to (nonassoc; also prefix ..e / postfix e..)
    ||  &&  |  ^  &              logical / bitwise
    ==  !=  ==?  !=?             equality (+ conditional-yield forms)
    <  >  <=  >=  <?  >?  <=?  >=?   relational (+ conditional-yield)
    <<  >>                       shift
    +  -                         additive
    *  /  %                      multiplicative
    unary: - + ! ~ * & ++ -- sizeof (type) #/ +/ */ &&/ ||/ <?/ >?/ ..e
           if/for/while expressions
    postfix: [] [[...]] (args) . -> --> -->> @ # ++ --
    primary: literals, names, _, (e), {e}

The right operand of ``.``/``->``/``-->`` is restricted to a bare name,
``(expr)``, ``{expr}``, or an if-expression, so that
``hash[0]-->next->scope`` parses as ``(hash[0]-->next)->scope`` the way
the paper's examples require.

Casts and declarations are recognised when a parenthesis/statement
begins with a type keyword, or with a typedef name known to the
``is_type_name`` predicate (supplied by the session, backed by the
debugger's symbol tables).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import DuelSyntaxError
from repro.core.lexer import KEYWORDS, Token, TokenStream, TYPE_KEYWORDS, unescape
from repro.core import nodes as N

#: Tokens that can never begin an expression (used for ``e..`` postfix).
_NON_STARTERS = {")", "]", "]]", "}", ",", ";", "=>", "?", ":", "@", "#",
                 "[[", "..", "&&", "||"}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")
_EQUALITY = ("==", "!=", "==?", "!=?")
_RELATIONAL = ("<", ">", "<=", ">=", "<?", ">?", "<=?", ">=?")
_REDUCTIONS = ("#/", "+/", "*/", "&&/", "||/", "<?/", ">?/")

_DECL_STARTERS = TYPE_KEYWORDS | {"typedef"}


class DuelParser:
    """Compiles DUEL source text into an AST."""

    def __init__(self, is_type_name: Optional[Callable[[str], bool]] = None):
        self.is_type_name = is_type_name or (lambda name: False)

    # -- public API -------------------------------------------------------
    def parse(self, text: str) -> N.Node:
        stream = TokenStream(text)
        node = self._sequence(stream)
        if not stream.at_end:
            raise stream.error(
                f"unexpected {stream.peek().text!r} after expression")
        return node

    # -- sequence / declarations ---------------------------------------------
    def _sequence(self, s: TokenStream) -> N.Node:
        node = self._statement(s)
        while s.accept(";"):
            if s.at_end or s.peek().is_op(")"):
                return N.Sequence(node, None)  # trailing ; = side effects only
            node = N.Sequence(node, self._statement(s))
        return node

    def _statement(self, s: TokenStream) -> N.Node:
        if self._starts_declaration(s):
            return self._declaration(s)
        return self._alternate(s)

    def _starts_declaration(self, s: TokenStream) -> bool:
        token = s.peek()
        if token.kind != "name":
            return False
        if token.text in _DECL_STARTERS or token.text in (
                "static", "extern", "register", "auto"):
            return True
        # typedef-name declaration: "size_t n" (name followed by name/*).
        if self.is_type_name(token.text):
            look = s.peek(1)
            return look.kind == "name" or look.is_op("*")
        return False

    def _declaration(self, s: TokenStream) -> N.Node:
        start_token = s.peek()
        start = start_token.start
        depth = 0
        end = start
        while not s.at_end:
            token = s.peek()
            if token.is_op("(", "[", "{"):
                depth += 1
            elif token.is_op("[["):
                depth += 2
            elif token.is_op(")", "]", "}"):
                depth -= 1
            elif token.is_op("]]"):
                depth -= 2
            elif token.is_op(";") and depth == 0:
                break
            end = token.end
            s.next()
        text = s.text[start:end]
        if not text.strip():
            raise s.error("empty declaration")
        return N.Declaration(text + ";")

    # -- alternate -------------------------------------------------------------
    def _alternate(self, s: TokenStream) -> N.Node:
        node = self._imply(s)
        while s.accept(","):
            node = N.Alternate(node, self._imply(s))
        return node

    # -- imply -----------------------------------------------------------------
    def _imply(self, s: TokenStream) -> N.Node:
        node = self._assign(s)
        if s.accept("=>"):
            return N.Imply(node, self._imply(s))
        return node

    # -- assignment / alias definition ------------------------------------------
    def _assign(self, s: TokenStream) -> N.Node:
        node = self._conditional(s)
        token = s.peek()
        if token.is_op(":="):
            if not isinstance(node, N.Name):
                raise s.error("alias definition needs a simple name "
                              "on the left of :=")
            s.next()
            return N.Define(node.name, self._assign(s))
        if token.is_op(*_ASSIGN_OPS):
            s.next()
            rhs = self._assign(s)
            return N.Assign(token.text, node, rhs)
        return node

    # -- conditional -----------------------------------------------------------
    def _conditional(self, s: TokenStream) -> N.Node:
        node = self._to(s)
        if s.accept("?"):
            then = self._assign(s)
            s.expect(":")
            els = self._conditional(s)
            return N.If(node, then, els)
        return node

    # -- to ----------------------------------------------------------------------
    def _to(self, s: TokenStream) -> N.Node:
        if s.accept(".."):
            return N.To(None, self._oror(s))
        node = self._oror(s)
        if s.accept(".."):
            if self._expression_follows(s):
                return N.To(node, self._oror(s))
            return N.To(node, None)
        return node

    def _expression_follows(self, s: TokenStream) -> bool:
        token = s.peek()
        if token.kind == "eof":
            return False
        if token.kind == "op":
            return token.text not in _NON_STARTERS
        if token.kind == "name" and token.text == "else":
            return False
        return True

    # -- binary tiers ----------------------------------------------------------
    def _oror(self, s: TokenStream) -> N.Node:
        node = self._andand(s)
        while s.accept("||"):
            node = N.OrOr(node, self._andand(s))
        return node

    def _andand(self, s: TokenStream) -> N.Node:
        node = self._bitor(s)
        while s.accept("&&"):
            node = N.AndAnd(node, self._bitor(s))
        return node

    def _bitor(self, s: TokenStream) -> N.Node:
        node = self._bitxor(s)
        while s.accept("|"):
            node = N.Binary("|", node, self._bitxor(s))
        return node

    def _bitxor(self, s: TokenStream) -> N.Node:
        node = self._bitand(s)
        while s.accept("^"):
            node = N.Binary("^", node, self._bitand(s))
        return node

    def _bitand(self, s: TokenStream) -> N.Node:
        node = self._equality(s)
        while s.accept("&"):
            node = N.Binary("&", node, self._equality(s))
        return node

    def _equality(self, s: TokenStream) -> N.Node:
        node = self._relational(s)
        while True:
            token = s.peek()
            if not token.is_op(*_EQUALITY):
                return node
            s.next()
            rhs = self._relational(s)
            if token.text.endswith("?"):
                node = N.CompareYield(token.text[:-1], node, rhs)
            else:
                node = N.Binary(token.text, node, rhs)

    def _relational(self, s: TokenStream) -> N.Node:
        node = self._shift(s)
        while True:
            token = s.peek()
            if not token.is_op(*_RELATIONAL):
                return node
            s.next()
            rhs = self._shift(s)
            if token.text.endswith("?"):
                node = N.CompareYield(token.text[:-1], node, rhs)
            else:
                node = N.Binary(token.text, node, rhs)

    def _shift(self, s: TokenStream) -> N.Node:
        node = self._additive(s)
        while True:
            token = s.peek()
            if not token.is_op("<<", ">>"):
                return node
            s.next()
            node = N.Binary(token.text, node, self._additive(s))

    def _additive(self, s: TokenStream) -> N.Node:
        node = self._multiplicative(s)
        while True:
            token = s.peek()
            if not token.is_op("+", "-"):
                return node
            s.next()
            node = N.Binary(token.text, node, self._multiplicative(s))

    def _multiplicative(self, s: TokenStream) -> N.Node:
        node = self._unary(s)
        while True:
            token = s.peek()
            if not token.is_op("*", "/", "%"):
                return node
            s.next()
            node = N.Binary(token.text, node, self._unary(s))

    # -- unary ---------------------------------------------------------------
    def _unary(self, s: TokenStream) -> N.Node:
        token = s.peek()
        if token.is_op("-", "+", "!", "~", "*", "&"):
            s.next()
            return N.Unary(token.text, self._unary(s))
        if token.is_op("++", "--"):
            s.next()
            return N.IncDec(token.text, self._unary(s), postfix=False)
        if token.is_op(*_REDUCTIONS):
            s.next()
            return N.Reduce(token.text[:-1], self._unary(s))
        if token.is_op(".."):
            s.next()
            return N.To(None, self._oror(s))
        if token.is_op("(") and self._starts_cast(s):
            return self._cast(s)
        if token.kind == "name":
            if token.text == "sizeof":
                return self._sizeof(s)
            if token.text == "if":
                return self._if_expr(s)
            if token.text == "while":
                return self._while_expr(s)
            if token.text == "for":
                return self._for_expr(s)
        return self._postfix(s)

    def _starts_cast(self, s: TokenStream) -> bool:
        look = s.peek(1)
        if look.kind != "name":
            return False
        if look.text in TYPE_KEYWORDS:
            return True
        if not self.is_type_name(look.text):
            return False
        # "(name)" is a cast only if followed by ")" then something that
        # a cast could apply to, or by "*"/ ")" inside.
        after = s.peek(2)
        return after.is_op("*", ")") or after.kind == "name"

    def _cast(self, s: TokenStream) -> N.Node:
        s.expect("(")
        start = s.peek().start
        depth = 1
        end = start
        while not s.at_end:
            token = s.peek()
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
                if depth == 0:
                    break
            end = token.end
            s.next()
        s.expect(")")
        type_text = s.text[start:end]
        return N.Cast(type_text, self._unary(s))

    def _sizeof(self, s: TokenStream) -> N.Node:
        s.next()  # 'sizeof'
        if s.peek().is_op("(") and self._starts_cast(s):
            s.expect("(")
            start = s.peek().start
            depth = 1
            end = start
            while not s.at_end:
                token = s.peek()
                if token.is_op("("):
                    depth += 1
                elif token.is_op(")"):
                    depth -= 1
                    if depth == 0:
                        break
                end = token.end
                s.next()
            s.expect(")")
            return N.SizeOf(type_text=s.text[start:end])
        return N.SizeOf(kid=self._unary(s))

    def _if_expr(self, s: TokenStream) -> N.Node:
        s.next()  # 'if'
        s.expect("(")
        cond = self._sequence(s)
        s.expect(")")
        then = self._conditional(s)
        els = None
        if s.peek().kind == "name" and s.peek().text == "else":
            s.next()
            els = self._conditional(s)
        return N.If(cond, then, els)

    def _while_expr(self, s: TokenStream) -> N.Node:
        s.next()
        s.expect("(")
        cond = self._sequence(s)
        s.expect(")")
        body = self._conditional(s)
        return N.While(cond, body)

    def _for_expr(self, s: TokenStream) -> N.Node:
        s.next()
        s.expect("(")
        init = None if s.peek().is_op(";") else self._alternate(s)
        s.expect(";")
        cond = None if s.peek().is_op(";") else self._alternate(s)
        s.expect(";")
        step = None if s.peek().is_op(")") else self._alternate(s)
        s.expect(")")
        body = self._conditional(s)
        return N.For(init, cond, step, body)

    # -- postfix -----------------------------------------------------------------
    def _postfix(self, s: TokenStream) -> N.Node:
        node = self._primary(s)
        while True:
            token = s.peek()
            if token.is_op("["):
                s.next()
                index = self._sequence(s)
                s.expect("]")
                node = N.Index(node, index)
            elif token.is_op("[["):
                s.next()
                selector = self._sequence(s)
                s.expect("]")
                s.expect("]")
                node = N.Select(node, selector)
            elif token.is_op("("):
                s.next()
                args = []
                if not s.peek().is_op(")"):
                    args.append(self._imply(s))
                    while s.accept(","):
                        args.append(self._imply(s))
                s.expect(")")
                node = N.Call(node, tuple(args))
            elif token.is_op(".", "->"):
                s.next()
                rhs = self._with_operand(s)
                node = N.With(node, rhs, arrow=(token.text == "->"))
            elif token.is_op("-->", "-->>"):
                s.next()
                rhs = self._with_operand(s)
                node = N.Expand(node, rhs,
                                breadth_first=(token.text == "-->>"))
            elif token.is_op("@"):
                s.next()
                node = N.Until(node, self._guard_operand(s))
            elif token.is_op("#"):
                s.next()
                name = s.next()
                if name.kind != "name" or name.text in KEYWORDS:
                    raise s.error("expected index-alias name after #")
                node = N.IndexAlias(node, name.text)
            elif token.is_op("++", "--"):
                s.next()
                node = N.IncDec(token.text, node, postfix=True)
            else:
                return node

    def _with_operand(self, s: TokenStream) -> N.Node:
        """Right side of . -> --> : name | (expr) | {expr} | if-expr."""
        token = s.peek()
        if token.kind == "name" and token.text == "if":
            return self._if_expr(s)
        if token.is_op("("):
            s.next()
            node = self._sequence(s)
            s.expect(")")
            return node
        if token.is_op("{"):
            s.next()
            node = self._sequence(s)
            s.expect("}")
            return N.Group(node)
        if token.kind == "name" and token.text not in KEYWORDS:
            s.next()
            return N.Name(token.text)
        if token.is_op("_"):  # unreachable: "_" lexes as a name
            s.next()
            return N.Underscore()
        raise s.error("expected field name or (expression) after ./->/-->")

    def _guard_operand(self, s: TokenStream) -> N.Node:
        """Right side of @ : constant | name | (expr) | {expr}."""
        token = s.peek()
        if token.is_op("("):
            s.next()
            node = self._sequence(s)
            s.expect(")")
            return node
        if token.is_op("{"):
            s.next()
            node = self._sequence(s)
            s.expect("}")
            return N.Group(node)
        if token.kind in ("num", "fnum", "char"):
            return self._primary(s)
        if token.is_op("-", "+") and s.peek(1).kind in ("num", "fnum", "char"):
            s.next()
            return N.Unary(token.text, self._primary(s))
        if token.kind == "name" and token.text not in KEYWORDS:
            s.next()
            return N.Name(token.text)
        raise s.error("expected constant, name, or (expression) after @")

    # -- primary -----------------------------------------------------------------
    def _primary(self, s: TokenStream) -> N.Node:
        token = s.peek()
        if token.kind == "num":
            s.next()
            return _int_constant(token)
        if token.kind == "fnum":
            s.next()
            return N.Constant(float(token.text), "double", token.text)
        if token.kind == "char":
            s.next()
            body = unescape(token.text[1:-1])
            return N.Constant(ord(body) & 0xFF, "char", token.text)
        if token.kind == "string":
            s.next()
            return N.StringLiteral(
                unescape(token.text[1:-1]).encode("latin-1"), token.text)
        if token.kind == "name":
            if token.text == "_":
                s.next()
                return N.Underscore()
            if token.text == "frame" and s.peek(1).is_op("("):
                s.next()
                s.expect("(")
                index = self._sequence(s)
                s.expect(")")
                return N.FrameExpr(index)
            if token.text in KEYWORDS:
                raise s.error(f"unexpected keyword {token.text!r}")
            s.next()
            return N.Name(token.text)
        if token.is_op("("):
            s.next()
            node = self._sequence(s)
            s.expect(")")
            return node
        if token.is_op("{"):
            s.next()
            node = self._sequence(s)
            s.expect("}")
            return N.Group(node)
        raise s.error(
            f"expected expression, found {token.text or 'end of input'!r}")


def _int_constant(token: Token) -> N.Constant:
    text = token.text
    body = text.rstrip("uUlL")
    suffix = text[len(body):].lower()
    value = int(body, 0)
    unsigned = "u" in suffix
    long_ = "l" in suffix
    if long_ and unsigned:
        hint = "ulong"
    elif long_:
        hint = "long"
    elif unsigned:
        hint = "uint"
    elif value > 0x7FFFFFFF:
        hint = "long"
    else:
        hint = "int"
    return N.Constant(value, hint, text)


def parse(text: str,
          is_type_name: Optional[Callable[[str], bool]] = None) -> N.Node:
    """Module-level convenience wrapper around :class:`DuelParser`."""
    return DuelParser(is_type_name).parse(text)
