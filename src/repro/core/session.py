"""DuelSession: the ``duel`` command.

"The duel command is similar to gdb's print command, except that the
duel command drives its expression argument and prints all of its
values."  A session compiles an input line, drives the resulting
generator tree, and renders one output line per produced value in the
paper's format::

    x[3] = 7
    hash[42]->scope = 7

Display rule reconstructed from the paper's sessions: expressions that
mention no program state (no names — pure constant expressions like
``(1..3)+(5,9)`` or ``1 + (double)3/2``) print their values joined on
one line (``6 10 7 11 8 12``, ``2.500``); anything touching the target
prints one ``sym = value`` line per value.  A value whose symbolic
expression renders identically to the value (reductions) also prints
bare.

Aliases persist across ``duel`` commands within a session, as in the
original.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Iterator, Optional

from repro.core import nodes as N
from repro.core.errors import DuelCancelled, DuelError, DuelTruncation
from repro.core.eval import _KEEP_DEFAULT, EvalOptions, Evaluator
from repro.core.format import ValueFormatter
from repro.core.parser import DuelParser
from repro.core.symbolic import DEFAULT_FOLD
from repro.core.values import DuelValue
from repro.obs.access import (DEFAULT_PAGE_SIZE, AccessLog, AccessTracer,
                              advise, compact_profile)
from repro.obs.metrics import MetricsRegistry, registry as process_registry
from repro.obs.qlog import QueryLog, classify
from repro.obs.recorder import FlightRecorder, should_dump
from repro.obs.trace import QueryTracer, RingBufferSink, TraceSink


class DuelSession:
    """An interactive DUEL evaluation session over one debugger backend.

    Parameters mirror the implementation switches discussed in the
    paper: ``symbolic`` turns derivation tracking off (it dominates
    evaluation cost), ``fold`` sets the ``->a->a`` folding threshold,
    and ``float_format`` controls double rendering (the paper prints
    ``2.500``; gdb prints ``2.5`` — default matches the paper).
    """

    def __init__(self, backend, symbolic: bool = True,
                 float_format: str = "%.3f", fold: int = DEFAULT_FOLD,
                 max_steps: int = 10_000_000, cycle_mode: str = "stop",
                 optimize: bool = False, deadline_ms=_KEEP_DEFAULT,
                 max_lines=_KEEP_DEFAULT,
                 metrics: Optional[MetricsRegistry] = None,
                 page_cache=None):
        self.backend = backend
        self.options = EvalOptions(symbolic=symbolic, max_steps=max_steps,
                                   cycle_mode=cycle_mode,
                                   deadline_ms=deadline_ms,
                                   max_lines=max_lines)
        #: The per-query resource governor (limits, counters, ^C token).
        self.governor = self.options.governor
        #: Compile-time constant folding (paper §Implementation: "could
        #: be done at compile time"); display text is preserved.
        self.optimize = optimize
        self.evaluator = Evaluator(backend, self.options)
        #: Target page-cache policy (``--page-cache``): None/'off'
        #: leaves the chain untouched, 'demand'/'adaptive' (or a
        #: :class:`~repro.target.pagecache.PageCachePolicy`) splices
        #: a :class:`~repro.target.pagecache.PageCachingBackend` in.
        if isinstance(page_cache, str):
            from repro.target.pagecache import parse_policy
            page_cache = None if page_cache == "off" \
                else parse_policy(page_cache)
        self.page_cache_policy = page_cache
        if page_cache is not None:
            self.evaluator.set_page_cache(page_cache)
        self.parser = DuelParser(is_type_name=self.evaluator.is_type_name)
        self.formatter = ValueFormatter(self.evaluator.ops,
                                        float_format=float_format)
        self.evaluator.formatter = self.formatter
        self.fold = fold
        #: Executed query texts, newest last (the paper's Discussion
        #: suggests a query history for re-issuing common queries).
        self.history: list[str] = []
        #: Named saved queries ("program-specific queries ... made by
        #: simply pointing and clicking" — here, by name).
        self.saved: dict[str, str] = {}
        #: Where cross-query aggregates land (default: the shared
        #: process-level registry; pass your own for isolation).
        self.metrics = metrics if metrics is not None \
            else process_registry()
        #: Trace every query driven by :meth:`duel` (REPL ``trace on``).
        self.tracing = False
        #: Sink receiving trace events while :attr:`tracing` is on;
        #: None means a fresh in-memory ring per query.
        self.trace_sink: Optional[TraceSink] = None
        #: The tracer of the most recent traced query.
        self.last_trace: Optional[QueryTracer] = None
        #: Per-query stats of the most recent :meth:`duel`/:meth:`explain`
        #: query: governor counters plus target-traffic/lookup deltas.
        self.last_query_stats: dict = {}
        #: Per-phase (parse/eval/format) milliseconds of that query.
        self.last_query_phases: dict = {}
        #: Structured query log receiving one JSONL record per query
        #: lifecycle event (``--query-log`` / ``qlog on``); None = off,
        #: at the cost of a single predicate per query.
        self.qlog: Optional[QueryLog] = None
        #: Flight recorder of recent completed queries; None = off.
        #: Attaching one also turns per-query tracing on, so recorded
        #: entries (and post-mortem dumps) carry EXPLAIN profile trees.
        self.recorder: Optional[FlightRecorder] = None
        #: Statement-statistics table (``repro.obs.statements``); None
        #: = off at the cost of one predicate per query.  The serve
        #: layer shares one table across every client session.
        self.statements = None
        #: Fingerprint of the most recent compiled query (set only
        #: while qlog or statements observation is on).
        self.last_fingerprint = None
        #: Wire trace id of the in-flight query (set by the serve
        #: layer so qlog terminal records carry it; None in-process).
        self.current_trace_id: Optional[str] = None
        #: Memory-access profile exporter (``--access-trace``); None =
        #: off at the cost of one predicate per query.  When attached,
        #: its head-sampling coin decides which queries run with the
        #: access tracer on.
        self.accesslog: Optional[AccessLog] = None
        #: Page size (bytes) access profiles aggregate locality at.
        self.access_page_size = DEFAULT_PAGE_SIZE
        #: Access profile of the most recent access-traced query, and
        #: the raw records behind it (the prefetch advisor replays
        #: them); None when the last query ran untraced.
        self.last_access: Optional[dict] = None
        self.last_access_records: list = []
        self._format_ns = 0

    # -- compiling ------------------------------------------------------
    def compile(self, text: str) -> N.Node:
        """Parse one DUEL input line into an AST (folded if enabled)."""
        node = self.parser.parse(text)
        if self.optimize:
            from repro.core.optimize import fold as fold_constants
            node = fold_constants(node)
        return node

    # -- evaluation -------------------------------------------------------
    def eval(self, text: str) -> list[DuelValue]:
        """Drive ``text`` and collect every produced value."""
        return list(self.ieval(text))

    def ieval(self, text: str) -> Iterator[DuelValue]:
        """Drive ``text`` lazily."""
        node = self.compile(text)
        self._record(text)
        self.evaluator.reset()
        yield from self.evaluator.eval(node)

    def _record(self, text: str) -> None:
        if not self.history or self.history[-1] != text:
            self.history.append(text)

    def eval_values(self, text: str):
        """Raw Python values (ints/floats/addresses) of ``text``."""
        ops = self.evaluator.ops
        return [ops.load(v) for v in self.ieval(text)]

    # -- printing ------------------------------------------------------------
    def format_line(self, v: DuelValue) -> str:
        """One output line for a produced value: ``sym = value``."""
        value_text = self.formatter.format(v)
        if not self.options.symbolic:
            return value_text
        sym_text = v.sym.render(self.fold)
        if sym_text == value_text or sym_text == "?":
            return value_text
        return f"{sym_text} = {value_text}"

    def eval_lines(self, text: str) -> list[str]:
        """All output lines for one ``duel`` command (paper format).

        Constant-only expressions produce a single space-joined line of
        values, reproducing the paper's ``duel (1..3)+(5,9)`` session.
        """
        return list(self.ieval_lines(text))

    def ieval_lines(self, text: str) -> Iterator[str]:
        """Output lines, produced lazily as the generator tree drives."""
        node = self.compile(text)
        self._record(text)
        self.evaluator.reset()
        yield from self._lines(node)

    def _lines(self, node: N.Node) -> Iterator[str]:
        """Output lines, metered: every printed value charges the
        governor's output quota and hits a cancellation/deadline
        checkpoint, so even a target-free ``1..`` stays interruptible.
        A truncation mid-stream keeps the partial output (the
        constants-only joined line included) and carries the produced
        count out on the exception for the diagnostic line."""
        values = self.evaluator.eval(node)
        governor = self.governor
        clock = perf_counter_ns
        produced = 0
        try:
            if self.options.symbolic and not _mentions_state(node):
                texts: list[str] = []
                try:
                    for v in values:
                        governor.checkpoint()
                        governor.charge("lines")
                        t0 = clock()
                        texts.append(self.formatter.format(v))
                        self._format_ns += clock() - t0
                        produced += 1
                except DuelTruncation:
                    if texts:
                        yield " ".join(texts)
                    raise
                if texts:
                    yield " ".join(texts)
                return
            for v in values:
                governor.checkpoint()
                governor.charge("lines")
                t0 = clock()
                line = self.format_line(v)
                self._format_ns += clock() - t0
                produced += 1
                yield line
        except DuelTruncation as truncation:
            if truncation.produced is None:
                truncation.produced = produced
            raise

    def ievents(self, text: str, on_begin=None,
                access: bool = False) -> Iterator[tuple]:
        """Drive one query as a stream of ``(kind, payload)`` events.

        The full recovering drive of :meth:`duel` — governor, qlog,
        tracer, metrics, flight recorder, failed-query rollback — as a
        lazy event stream instead of writes to a text stream, so a
        front end that is *not* a terminal (the ``repro.serve`` query
        service) can multiplex queries without re-implementing the
        lifecycle.  Events, in order:

        ``("value", line)``
            one per output line, produced as the generator tree drives;
        exactly one terminal event closing the query:
            ``("done", info)`` — drained completely;
            ``("truncated", info)`` / ``("cancelled", info)`` — a
            governor limit or the cancel token stopped it; partial
            values stand and ``info["diagnostic"]`` holds the one-line
            notice;
            ``("faulted", info)`` — a mid-drive :class:`DuelError`
            (side effects rolled back, ``info["error"]`` set);
            ``("error", info)`` — the text never compiled
            (``info["error"]`` set, nothing was driven).

        ``info`` always carries ``values`` (lines actually produced)
        and, for driven queries, ``stats``/``phases`` snapshots.
        ``on_begin`` (when given) runs after the governor reset but
        before the first value is pulled — the serve layer uses it to
        close the race between a ``cancel`` frame and query start.
        ``access=True`` forces the memory-access tracer on for this
        query (the ``accesses`` command); otherwise the access log's
        sampling coin decides, and with no access log attached the
        cost is one predicate.
        """
        self.governor.begin_query()
        self.last_query_stats = {}
        self.last_fingerprint = None
        self.last_access = None
        qlog = self.qlog
        qid = qlog.begin(text, "generator") if qlog is not None else None
        t0 = perf_counter_ns()
        try:
            node = self.compile(text)
        except DuelError as error:
            if qid is not None:
                qlog.end(qid, "rejected", error=error,
                         trace_id=self.current_trace_id)
            yield ("error", {"values": 0, "error": str(error),
                             "error_type": type(error).__name__})
            return
        parse_ns = perf_counter_ns() - t0
        if qid is not None:
            qlog.parsed(qid, parse_ns / 1e6, node)
        if access or qid is not None or self.statements is not None \
                or self.accesslog is not None:
            from repro.obs.fingerprint import fingerprint as _fingerprint
            self.last_fingerprint = _fingerprint(node)
        self._record(text)
        if on_begin is not None:
            on_begin()
        tracer = self._attach_tracer(node, text)
        accesslog = self.accesslog
        if access or (accesslog is not None and accesslog.sample_next()):
            tracer, atracer = self._attach_access(node, text, tracer)
        else:
            atracer = None
        checkpoint = self._checkpoint_for(node)
        self.evaluator.reset()
        baseline = self._stats_baseline()
        produced = 0
        failure = None
        drive_t0 = perf_counter_ns()
        try:
            for line in self._lines(node):
                produced += 1
                yield ("value", line)
        except DuelTruncation as truncation:
            failure = truncation
            if truncation.produced is not None:
                produced = truncation.produced
        except DuelError as error:
            failure = error
            self._restore(checkpoint)
        except GeneratorExit:
            # The consumer abandoned the stream mid-drive (a serve
            # worker unwound, a client vanished): that is a
            # cancellation in the audit trail, never a clean drain.
            failure = DuelCancelled("drive abandoned")
            raise
        finally:
            self._finish_query(tracer, baseline, parse_ns,
                               perf_counter_ns() - drive_t0)
            if atracer is not None:
                self._finish_access(atracer)
            if qid is not None or self.recorder is not None \
                    or self.statements is not None \
                    or self.last_access is not None:
                self._observe_query(qid, text, failure, tracer)
        outcome, kind = classify(failure)
        info: dict = {"values": produced,
                      "stats": dict(self.last_query_stats),
                      "phases": dict(self.last_query_phases)}
        if kind is not None:
            info["kind"] = kind
        if self.last_access is not None:
            info["access"] = dict(self.last_access)
            if access:
                # Explicitly requested profiles (the ``accesses``
                # command/op) carry the advisor sweep; sampled ones
                # stay cheap.
                info["advisor"] = advise(self.last_access_records)
        if outcome == "drained":
            yield ("done", info)
        elif outcome in ("truncated", "cancelled"):
            info["diagnostic"] = failure.diagnostic(produced)
            yield (outcome, info)
        else:
            info["error"] = str(failure)
            info["error_type"] = type(failure).__name__
            yield ("faulted", info)

    def duel(self, text: str, out=None) -> None:
        """The gdb ``duel`` command: evaluate and print — robustly.

        Drives the expression lazily, printing each value as it is
        produced, so a ``DuelError`` mid-drive still reports every
        partial result already yielded before the error line.  For
        side-effecting queries (assignments, increments, target calls,
        declarations) a target snapshot is taken first and restored on
        error, so a failed query never leaves the debuggee
        half-mutated; the session stays usable either way.

        A governor limit tripping under the ``truncate`` policy (or a
        ^C on the cancel token) is *not* an error: driving stops, the
        partial results stand — effects already applied are kept, as
        under the paper's gdb ^C — and one diagnostic line reports
        what stopped the query and how to raise the limit.

        This is the terminal rendering of :meth:`ievents`: values
        print as they stream, truncations print their diagnostic,
        faults print the error line.
        """
        import sys
        stream = out if out is not None else sys.stdout
        for kind, payload in self.ievents(text):
            if kind == "value":
                stream.write(payload + "\n")
            elif kind in ("truncated", "cancelled"):
                stream.write(payload["diagnostic"] + "\n")
            elif kind in ("faulted", "error"):
                stream.write(payload["error"] + "\n")

    def explain(self, text: str, out=None) -> None:
        """Run ``text`` traced and print its per-node profile tree.

        The query is driven exactly like :meth:`duel` — quotas,
        rollback and truncation all apply — but the output lines are
        swallowed; what prints instead is the annotated AST profile
        (pulls, yields, time share, attributed target reads per node)
        and a one-line summary, the REPL's ``explain`` command.
        """
        import sys
        from repro.obs.explain import profile_footer, render_profile
        stream = out if out is not None else sys.stdout
        self.governor.begin_query()
        self.last_query_stats = {}
        self.last_fingerprint = None
        self.last_access = None
        qlog = self.qlog
        qid = qlog.begin(text, "generator") if qlog is not None else None
        t0 = perf_counter_ns()
        try:
            node = self.compile(text)
        except DuelError as error:
            if qid is not None:
                qlog.end(qid, "rejected", error=error)
            stream.write(str(error) + "\n")
            return
        parse_ns = perf_counter_ns() - t0
        if qid is not None:
            qlog.parsed(qid, parse_ns / 1e6, node)
        if qid is not None or self.statements is not None:
            from repro.obs.fingerprint import fingerprint as _fingerprint
            self.last_fingerprint = _fingerprint(node)
        self._record(text)
        # Reuse the session sink (--trace-json) when one is attached;
        # span aggregates alone are enough for the profile otherwise.
        tracer = QueryTracer(self.trace_sink)
        tracer.begin(node, text)
        self.evaluator.set_tracer(tracer)
        checkpoint = self._checkpoint_for(node)
        self.evaluator.reset()
        baseline = self._stats_baseline()
        note = None
        failure = None
        drive_t0 = perf_counter_ns()
        try:
            for _ in self._lines(node):
                pass
        except DuelTruncation as truncation:
            failure = truncation
            produced = truncation.produced if truncation.produced \
                is not None else self.governor.lines
            note = truncation.diagnostic(produced)
        except DuelError as error:
            failure = error
            self._restore(checkpoint)
            note = str(error)
        finally:
            self._finish_query(tracer, baseline, parse_ns,
                               perf_counter_ns() - drive_t0)
            if qid is not None or self.recorder is not None \
                    or self.statements is not None:
                self._observe_query(qid, text, failure, tracer)
        for line in render_profile(node, tracer):
            stream.write(line + "\n")
        stats = self.last_query_stats
        stream.write(profile_footer(stats.get("lines", 0),
                                    stats.get("wall_ms", 0.0), stats) + "\n")
        if note is not None:
            stream.write(note + "\n")

    # -- per-query accounting ------------------------------------------------
    def _attach_tracer(self, node: N.Node,
                       text: str) -> Optional[QueryTracer]:
        """A fresh per-query tracer when tracing or the recorder is on.

        The flight recorder implies tracing (its entries carry the
        query's profile tree), but with a much smaller event ring —
        post-mortems want the span aggregates plus a short tail of
        events, not 64k of them per query.
        """
        recorder = self.recorder
        if not self.tracing and recorder is None:
            return None
        sink = self.trace_sink
        if sink is None:
            capacity = 65536 if self.tracing else recorder.ring_capacity
            sink = RingBufferSink(capacity)
        tracer = QueryTracer(sink)
        tracer.begin(node, text)
        self.evaluator.set_tracer(tracer)
        return tracer

    def _attach_access(self, node: N.Node, text: str, tracer):
        """Arm the memory-access tracer for this query.

        Access records carry the preorder index of the AST node being
        pulled, which lives on the engine tracer's span stack — so a
        query profiled without ``trace on`` gets a bare (sinkless)
        :class:`QueryTracer` for attribution.  Returns the (possibly
        new) engine tracer and the access tracer.
        """
        if tracer is None:
            tracer = QueryTracer(None)
            tracer.begin(node, text)
            self.evaluator.set_tracer(tracer)
        atracer = AccessTracer(spans=tracer)
        self.evaluator.set_access_tracer(atracer)
        return tracer, atracer

    def _finish_access(self, atracer) -> None:
        """Detach the access tracer and freeze its profile."""
        self.evaluator.set_access_tracer(None)
        self.last_access_records = atracer.records()
        self.last_access = atracer.profile(self.access_page_size)

    def accesses(self, text: str) -> dict:
        """Drive ``text`` access-traced; report where its reads went.

        The REPL ``accesses`` command and the ``accesses`` wire op:
        the query runs through the full recovering :meth:`ievents`
        drive (governor, rollback, qlog — everything applies), output
        lines are swallowed, and the result describes the target
        traffic instead: the access profile (stride histogram,
        classification, page locality) plus the prefetch advisor's
        projected hit rates for the recorded trace.
        """
        outcome, info = "error", {}
        for kind, payload in self.ievents(text, access=True):
            if kind != "value":
                outcome, info = kind, payload
        result: dict = {"outcome": outcome,
                        "values": info.get("values", 0)}
        for key in ("diagnostic", "error", "error_type",
                    "access", "advisor"):
            if key in info:
                result[key] = info[key]
        if self.last_fingerprint is not None:
            result["fingerprint"] = self.last_fingerprint.hash
        cache = self.evaluator.page_cache
        if cache is not None:
            result["cache"] = self.cache_report()
        return result

    def cache_report(self) -> dict:
        """Measured page-cache behaviour vs. the advisor's projection.

        The closing of PR 9's loop: the advisor *projected* hit rates
        by replaying traces through a simulated LRU; with the real
        cache attached this reports what the query actually saw at
        the configured (page size, capacity) point next to what the
        simulation projects for the same recorded trace — a live
        calibration check for the advisor's model.  Empty dict when
        no cache is attached.
        """
        cache = self.evaluator.page_cache
        if cache is None:
            return {}
        stats = self.last_query_stats
        report = {
            "mode": cache.policy.mode,
            "page_size": cache.policy.page_size,
            "capacity": cache.policy.capacity,
            "hits": stats.get("cache_hits", 0),
            "misses": stats.get("cache_misses", 0),
            "physical_reads": stats.get("physical_reads", 0),
            "logical_reads": stats.get("reads", 0),
            "prefetched_bytes": stats.get("prefetched_bytes", 0),
            "measured_hit_rate": stats.get("cache_hit_rate", 0.0),
            "pattern": cache.stats()["pattern"],
        }
        if self.last_access_records:
            from repro.obs.access import simulate_page_cache
            projection = simulate_page_cache(self.last_access_records,
                                             cache.policy.page_size,
                                             cache.policy.capacity)
            report["projected_hit_rate"] = projection["hit_rate"]
            report["projection_gap"] = round(
                report["measured_hit_rate"] - projection["hit_rate"], 4)
        return report

    def _stats_baseline(self) -> tuple:
        """Cumulative counters sampled at query start (deltas later)."""
        backend = self.evaluator.backend
        evaluator = self.evaluator
        self._format_ns = 0
        cache = evaluator.page_cache
        return (backend.reads, backend.writes, backend.calls,
                backend.allocs, evaluator.scope.lookup_count,
                evaluator.string_cache_hits, evaluator.string_cache_misses,
                cache.counters() if cache is not None else None)

    def _finish_query(self, tracer: Optional[QueryTracer], baseline: tuple,
                      parse_ns: int, drive_ns: int) -> None:
        """Freeze the clock, detach tracing, record per-query stats.

        Fills :attr:`last_query_stats` with the governor counters plus
        the query's target-traffic and lookup deltas, and folds the
        query into the metrics registry — so identical back-to-back
        queries report identical per-query stats (wall time aside).
        """
        self.governor.end_query()
        if tracer is not None:
            tracer.finish()
            self.evaluator.set_tracer(None)
            self.last_trace = tracer
        backend = self.evaluator.backend
        evaluator = self.evaluator
        (reads0, writes0, calls0, allocs0, lookups0, hits0, misses0,
         cache0) = baseline
        traffic = {
            "reads": backend.reads - reads0,
            "writes": backend.writes - writes0,
            "calls": backend.calls - calls0,
            "allocs": backend.allocs - allocs0,
        }
        stats = self.governor.stats()
        stats.update(traffic)
        stats["lookups"] = evaluator.scope.lookup_count - lookups0
        cache = evaluator.page_cache
        cache_deltas = None
        if cache is not None and cache0 is not None:
            # Logical reads (``reads`` above, counted over the cache)
            # and physical inner reads diverge by design; both travel
            # so ``reads_per_value`` stays honest downstream.
            now = cache.counters()
            cache_deltas = {name: now[name] - cache0[name]
                            for name in cache0}
            stats.update(cache_deltas)
            looked = cache_deltas["cache_hits"] \
                + cache_deltas["cache_misses"]
            stats["cache_hit_rate"] = round(
                cache_deltas["cache_hits"] / looked, 4) if looked else 0.0
        self.last_query_stats = stats
        format_ns = self._format_ns
        self.last_query_phases = {
            "parse": parse_ns / 1e6,
            "eval": max(drive_ns - format_ns, 0) / 1e6,
            "format": format_ns / 1e6}
        if self.metrics is not None:
            self.metrics.record_query(self.governor.stats(), traffic,
                                      phases=self.last_query_phases)
            self.metrics.counter("string_cache_hits").inc(
                evaluator.string_cache_hits - hits0)
            self.metrics.counter("string_cache_misses").inc(
                evaluator.string_cache_misses - misses0)
            if cache_deltas is not None:
                for name in ("cache_hits", "cache_misses",
                             "cache_evictions", "physical_reads",
                             "prefetched_bytes", "prefetch_hits"):
                    self.metrics.counter(name).inc(cache_deltas[name])
                self.metrics.gauge("cache_hit_rate").set(
                    round(self.metrics.cache_rate("cache"), 4))

    def _observe_query(self, qid: Optional[int], text: str, failure,
                       tracer: Optional[QueryTracer]) -> None:
        """Feed one finished query to the query log and flight recorder.

        Runs in the drive's ``finally`` (after :meth:`_finish_query`
        froze the stats), so every query — drained, truncated,
        cancelled or faulted — leaves exactly one terminal log record,
        and the recorder window always reflects what actually ran.
        """
        outcome, kind = classify(failure)
        stats = self.last_query_stats
        # The governor's lines counter includes the charge that tripped
        # the quota; the truncation knows how many values actually made
        # it out, and that is what the record should say.
        produced = getattr(failure, "produced", None)
        values = produced if produced is not None \
            else stats.get("lines", 0)
        fp = self.last_fingerprint
        access = self.last_access
        if qid is not None:
            self.qlog.end(qid, outcome, values=values, kind=kind,
                          error=failure if outcome == "faulted" else None,
                          stats=stats, phases=self.last_query_phases,
                          fingerprint=fp.hash if fp is not None else None,
                          trace_id=self.current_trace_id,
                          access=compact_profile(access)
                          if access is not None else None)
        statements = self.statements
        if statements is not None and fp is not None:
            statements.record(fp.hash, fp.text, outcome=outcome,
                              values=values, stats=stats,
                              phases=self.last_query_phases)
            if access is not None:
                statements.record_access(fp.hash, access)
        accesslog = self.accesslog
        if accesslog is not None and access is not None:
            record = {"ev": "access", "text": text, "outcome": outcome,
                      "values": values, "profile": access}
            if fp is not None:
                record["fingerprint"] = fp.hash
            if self.current_trace_id is not None:
                record["trace_id"] = self.current_trace_id
            accesslog.export(record)
        recorder = self.recorder
        if recorder is None:
            return
        entry = {"qid": qid, "text": text, "outcome": outcome,
                 "values": values, "stats": dict(stats),
                 "phases": dict(self.last_query_phases)}
        if kind is not None:
            entry["kind"] = kind
        if failure is not None and outcome == "faulted":
            entry["error"] = str(failure)
            entry["error_type"] = type(failure).__name__
        if tracer is not None:
            entry["explain"] = [span.as_dict() for span in tracer.spans]
            events = tracer.events()
            if events:
                entry["events"] = [list(event) for event in events]
        recorder.record(entry)
        if recorder.dump_dir is not None and should_dump(outcome, failure):
            reason = f"{outcome}: query {qid} {text!r}"
            if failure is not None:
                reason += f" ({failure})"
            try:
                recorder.dump(reason, metrics=self.metrics,
                              governor=self.governor)
            except OSError:
                pass        # a failing dump must never break the session

    # -- failed-query rollback ----------------------------------------------
    def _checkpoint_for(self, node: N.Node):
        """Snapshot the target before a query that could mutate it.

        Only possible when the backend exposes its program (the
        simulator and the fault-injecting wrapper do); other backends
        simply skip rollback.
        """
        if not _has_side_effects(node):
            return None
        program = getattr(self.backend, "program", None)
        if program is None:
            return None
        from repro.target import snapshot
        return (program, snapshot.take(program))

    def _restore(self, checkpoint) -> None:
        if checkpoint is None:
            return
        program, snap = checkpoint
        from repro.target import snapshot
        snapshot.restore(program, snap)
        self.evaluator.invalidate_target_caches()

    def values_line(self, text: str) -> str:
        """Space-joined value texts, the paper's constants-only display.

        The paper's opening examples show ``duel (1..3)+(5,9)`` printing
        ``6 10 7 11 8 12`` ("the examples ... omitted the symbolic
        output"); this helper reproduces that presentation.
        """
        return " ".join(self.formatter.format(v) for v in self.ieval(text))

    # -- saved queries (paper Discussion: editable query history) -----------
    def save_query(self, name: str, text: str) -> None:
        """Name a query for later re-issue (validated eagerly)."""
        self.compile(text)
        self.saved[name] = text

    def run_saved(self, name: str) -> list[str]:
        """Re-issue a saved query by name; returns its output lines.

        Routed through the recovering :meth:`duel` drive — exactly like
        the REPL's ``!name`` path — so a saved query that faults or
        truncates mid-drive still returns the lines it produced (plus
        the error or truncation diagnostic) instead of raising away
        the partial results.
        """
        if name not in self.saved:
            raise KeyError(f"no saved query named {name!r}")
        import io
        buffer = io.StringIO()
        self.duel(self.saved[name], out=buffer)
        return buffer.getvalue().splitlines()

    # -- alias management ------------------------------------------------------
    def clear_aliases(self) -> None:
        """Drop all debugger aliases (x := ... definitions)."""
        self.evaluator.scope.clear_aliases()

    def aliases(self) -> dict[str, DuelValue]:
        return self.evaluator.scope.aliases()

    @property
    def lookup_count(self) -> int:
        """Total symbol lookups performed (benchmark P2)."""
        return self.evaluator.scope.lookup_count


def _has_side_effects(node: N.Node) -> bool:
    """True when evaluating the AST can mutate the target.

    Assignments and increments write memory; calls run target code;
    declarations allocate target scratch space.
    """
    for n in N.walk(node):
        if isinstance(n, (N.Assign, N.IncDec, N.Call, N.Declaration)):
            return True
    return False


def _mentions_state(node: N.Node) -> bool:
    """True when the AST refers to any name/alias/declaration.

    Pure constant expressions are displayed without symbolics, matching
    every constants-only session in the paper.
    """
    for n in N.walk(node):
        if isinstance(n, (N.Name, N.Underscore, N.Declaration, N.Define,
                          N.IndexAlias, N.StringLiteral, N.FrameExpr)):
            return True
    return False
