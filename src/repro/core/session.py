"""DuelSession: the ``duel`` command.

"The duel command is similar to gdb's print command, except that the
duel command drives its expression argument and prints all of its
values."  A session compiles an input line, drives the resulting
generator tree, and renders one output line per produced value in the
paper's format::

    x[3] = 7
    hash[42]->scope = 7

Display rule reconstructed from the paper's sessions: expressions that
mention no program state (no names — pure constant expressions like
``(1..3)+(5,9)`` or ``1 + (double)3/2``) print their values joined on
one line (``6 10 7 11 8 12``, ``2.500``); anything touching the target
prints one ``sym = value`` line per value.  A value whose symbolic
expression renders identically to the value (reductions) also prints
bare.

Aliases persist across ``duel`` commands within a session, as in the
original.
"""

from __future__ import annotations

from typing import Iterator

from repro.core import nodes as N
from repro.core.errors import DuelError, DuelTruncation
from repro.core.eval import _KEEP_DEFAULT, EvalOptions, Evaluator
from repro.core.format import ValueFormatter
from repro.core.parser import DuelParser
from repro.core.symbolic import DEFAULT_FOLD
from repro.core.values import DuelValue


class DuelSession:
    """An interactive DUEL evaluation session over one debugger backend.

    Parameters mirror the implementation switches discussed in the
    paper: ``symbolic`` turns derivation tracking off (it dominates
    evaluation cost), ``fold`` sets the ``->a->a`` folding threshold,
    and ``float_format`` controls double rendering (the paper prints
    ``2.500``; gdb prints ``2.5`` — default matches the paper).
    """

    def __init__(self, backend, symbolic: bool = True,
                 float_format: str = "%.3f", fold: int = DEFAULT_FOLD,
                 max_steps: int = 10_000_000, cycle_mode: str = "stop",
                 optimize: bool = False, deadline_ms=_KEEP_DEFAULT,
                 max_lines=_KEEP_DEFAULT):
        self.backend = backend
        self.options = EvalOptions(symbolic=symbolic, max_steps=max_steps,
                                   cycle_mode=cycle_mode,
                                   deadline_ms=deadline_ms,
                                   max_lines=max_lines)
        #: The per-query resource governor (limits, counters, ^C token).
        self.governor = self.options.governor
        #: Compile-time constant folding (paper §Implementation: "could
        #: be done at compile time"); display text is preserved.
        self.optimize = optimize
        self.evaluator = Evaluator(backend, self.options)
        self.parser = DuelParser(is_type_name=self.evaluator.is_type_name)
        self.formatter = ValueFormatter(self.evaluator.ops,
                                        float_format=float_format)
        self.evaluator.formatter = self.formatter
        self.fold = fold
        #: Executed query texts, newest last (the paper's Discussion
        #: suggests a query history for re-issuing common queries).
        self.history: list[str] = []
        #: Named saved queries ("program-specific queries ... made by
        #: simply pointing and clicking" — here, by name).
        self.saved: dict[str, str] = {}

    # -- compiling ------------------------------------------------------
    def compile(self, text: str) -> N.Node:
        """Parse one DUEL input line into an AST (folded if enabled)."""
        node = self.parser.parse(text)
        if self.optimize:
            from repro.core.optimize import fold as fold_constants
            node = fold_constants(node)
        return node

    # -- evaluation -------------------------------------------------------
    def eval(self, text: str) -> list[DuelValue]:
        """Drive ``text`` and collect every produced value."""
        return list(self.ieval(text))

    def ieval(self, text: str) -> Iterator[DuelValue]:
        """Drive ``text`` lazily."""
        node = self.compile(text)
        self._record(text)
        self.evaluator.reset()
        yield from self.evaluator.eval(node)

    def _record(self, text: str) -> None:
        if not self.history or self.history[-1] != text:
            self.history.append(text)

    def eval_values(self, text: str):
        """Raw Python values (ints/floats/addresses) of ``text``."""
        ops = self.evaluator.ops
        return [ops.load(v) for v in self.ieval(text)]

    # -- printing ------------------------------------------------------------
    def format_line(self, v: DuelValue) -> str:
        """One output line for a produced value: ``sym = value``."""
        value_text = self.formatter.format(v)
        if not self.options.symbolic:
            return value_text
        sym_text = v.sym.render(self.fold)
        if sym_text == value_text or sym_text == "?":
            return value_text
        return f"{sym_text} = {value_text}"

    def eval_lines(self, text: str) -> list[str]:
        """All output lines for one ``duel`` command (paper format).

        Constant-only expressions produce a single space-joined line of
        values, reproducing the paper's ``duel (1..3)+(5,9)`` session.
        """
        return list(self.ieval_lines(text))

    def ieval_lines(self, text: str) -> Iterator[str]:
        """Output lines, produced lazily as the generator tree drives."""
        node = self.compile(text)
        self._record(text)
        self.evaluator.reset()
        yield from self._lines(node)

    def _lines(self, node: N.Node) -> Iterator[str]:
        """Output lines, metered: every printed value charges the
        governor's output quota and hits a cancellation/deadline
        checkpoint, so even a target-free ``1..`` stays interruptible.
        A truncation mid-stream keeps the partial output (the
        constants-only joined line included) and carries the produced
        count out on the exception for the diagnostic line."""
        values = self.evaluator.eval(node)
        governor = self.governor
        produced = 0
        try:
            if self.options.symbolic and not _mentions_state(node):
                texts: list[str] = []
                try:
                    for v in values:
                        governor.checkpoint()
                        governor.charge("lines")
                        texts.append(self.formatter.format(v))
                        produced += 1
                except DuelTruncation:
                    if texts:
                        yield " ".join(texts)
                    raise
                if texts:
                    yield " ".join(texts)
                return
            for v in values:
                governor.checkpoint()
                governor.charge("lines")
                line = self.format_line(v)
                produced += 1
                yield line
        except DuelTruncation as truncation:
            if truncation.produced is None:
                truncation.produced = produced
            raise

    def duel(self, text: str, out=None) -> None:
        """The gdb ``duel`` command: evaluate and print — robustly.

        Drives the expression lazily, printing each value as it is
        produced, so a ``DuelError`` mid-drive still reports every
        partial result already yielded before the error line.  For
        side-effecting queries (assignments, increments, target calls,
        declarations) a target snapshot is taken first and restored on
        error, so a failed query never leaves the debuggee
        half-mutated; the session stays usable either way.

        A governor limit tripping under the ``truncate`` policy (or a
        ^C on the cancel token) is *not* an error: driving stops, the
        partial results stand — effects already applied are kept, as
        under the paper's gdb ^C — and one diagnostic line reports
        what stopped the query and how to raise the limit.
        """
        import sys
        stream = out if out is not None else sys.stdout
        self.governor.begin_query()
        try:
            node = self.compile(text)
        except DuelError as error:
            stream.write(str(error) + "\n")
            return
        self._record(text)
        checkpoint = self._checkpoint_for(node)
        self.evaluator.reset()
        written = 0
        try:
            for line in self._lines(node):
                stream.write(line + "\n")
                written += 1
        except DuelTruncation as truncation:
            produced = truncation.produced if truncation.produced \
                is not None else written
            stream.write(truncation.diagnostic(produced) + "\n")
        except DuelError as error:
            self._restore(checkpoint)
            stream.write(str(error) + "\n")
        finally:
            self.governor.end_query()

    # -- failed-query rollback ----------------------------------------------
    def _checkpoint_for(self, node: N.Node):
        """Snapshot the target before a query that could mutate it.

        Only possible when the backend exposes its program (the
        simulator and the fault-injecting wrapper do); other backends
        simply skip rollback.
        """
        if not _has_side_effects(node):
            return None
        program = getattr(self.backend, "program", None)
        if program is None:
            return None
        from repro.target import snapshot
        return (program, snapshot.take(program))

    def _restore(self, checkpoint) -> None:
        if checkpoint is None:
            return
        program, snap = checkpoint
        from repro.target import snapshot
        snapshot.restore(program, snap)
        self.evaluator.invalidate_target_caches()

    def values_line(self, text: str) -> str:
        """Space-joined value texts, the paper's constants-only display.

        The paper's opening examples show ``duel (1..3)+(5,9)`` printing
        ``6 10 7 11 8 12`` ("the examples ... omitted the symbolic
        output"); this helper reproduces that presentation.
        """
        return " ".join(self.formatter.format(v) for v in self.ieval(text))

    # -- saved queries (paper Discussion: editable query history) -----------
    def save_query(self, name: str, text: str) -> None:
        """Name a query for later re-issue (validated eagerly)."""
        self.compile(text)
        self.saved[name] = text

    def run_saved(self, name: str) -> list[str]:
        """Re-issue a saved query by name; returns its output lines.

        Routed through the recovering :meth:`duel` drive — exactly like
        the REPL's ``!name`` path — so a saved query that faults or
        truncates mid-drive still returns the lines it produced (plus
        the error or truncation diagnostic) instead of raising away
        the partial results.
        """
        if name not in self.saved:
            raise KeyError(f"no saved query named {name!r}")
        import io
        buffer = io.StringIO()
        self.duel(self.saved[name], out=buffer)
        return buffer.getvalue().splitlines()

    # -- alias management ------------------------------------------------------
    def clear_aliases(self) -> None:
        """Drop all debugger aliases (x := ... definitions)."""
        self.evaluator.scope.clear_aliases()

    def aliases(self) -> dict[str, DuelValue]:
        return self.evaluator.scope.aliases()

    @property
    def lookup_count(self) -> int:
        """Total symbol lookups performed (benchmark P2)."""
        return self.evaluator.scope.lookup_count


def _has_side_effects(node: N.Node) -> bool:
    """True when evaluating the AST can mutate the target.

    Assignments and increments write memory; calls run target code;
    declarations allocate target scratch space.
    """
    for n in N.walk(node):
        if isinstance(n, (N.Assign, N.IncDec, N.Call, N.Declaration)):
            return True
    return False


def _mentions_state(node: N.Node) -> bool:
    """True when the AST refers to any name/alias/declaration.

    Pure constant expressions are displayed without symbolics, matching
    every constants-only session in the paper.
    """
    for n in N.walk(node):
        if isinstance(n, (N.Name, N.Underscore, N.Declaration, N.Define,
                          N.IndexAlias, N.StringLiteral, N.FrameExpr)):
            return True
    return False
