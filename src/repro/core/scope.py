"""Name resolution: the ``fetch`` of the paper's pseudo-code.

A name in a DUEL expression can resolve, in order, to:

1. a field of a value on the *with* stack (``e1.e2`` / ``e1->e2`` /
   ``-->`` push their operand; innermost entry searched first);
2. the special name ``_`` — the with operand itself;
3. a debugger alias (``x := e``, ``e#n`` indices, ``int i;``
   declarations);
4. a target variable (innermost frame, then globals — the backend
   resolves the frame chain);
5. an enumeration constant.

The with stack is the ``push``/``pop`` pair in the paper's WITH and DFS
semantics; aliases are the paper's ``alias()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ctype.types import RecordType
from repro.core.errors import DuelNameError
from repro.core.symbolic import Sym, SymField, SymText, extend_chain
from repro.core.values import DuelValue, lvalue, rvalue


@dataclass
class WithEntry:
    """One pushed scope: the operand value and how to spell its fields."""

    value: DuelValue
    #: True when entered via ``->`` (fields print with ``->``).
    arrow: bool
    #: True when entered by a ``-->`` expansion (fields extend chains).
    chain: bool = False
    #: What ``_`` denotes: for ``e1->e2`` the *pointer* e1, not the
    #: dereferenced record (the paper's ``hash[..1024]->(if (_ && ...))``
    #: tests the pointer).  None means ``value`` itself.
    underscore: Optional[DuelValue] = None

    @property
    def underscore_value(self) -> DuelValue:
        return self.underscore if self.underscore is not None else self.value


class Scope:
    """The name-resolution state for one evaluation context."""

    def __init__(self, backend):
        self.backend = backend
        self._with_stack: list[WithEntry] = []
        self._aliases: dict[str, DuelValue] = {}
        #: Count of symbol lookups performed (benchmark P2 reads this).
        self.lookup_count = 0

    # -- with stack -------------------------------------------------------
    def push(self, entry: WithEntry) -> None:
        self._with_stack.append(entry)

    def pop(self) -> WithEntry:
        return self._with_stack.pop()

    @property
    def with_depth(self) -> int:
        return len(self._with_stack)

    def current_with(self) -> Optional[WithEntry]:
        return self._with_stack[-1] if self._with_stack else None

    # -- aliases ------------------------------------------------------------
    def alias(self, name: str, value: DuelValue) -> None:
        """Bind a debugger alias (paper's ``alias(n->name, u)``)."""
        self._aliases[name] = value

    def unalias(self, name: str) -> None:
        self._aliases.pop(name, None)

    def clear_aliases(self) -> None:
        self._aliases.clear()

    def aliases(self) -> dict[str, DuelValue]:
        return dict(self._aliases)

    # -- fetch ------------------------------------------------------------
    def fetch(self, name: str) -> DuelValue:
        """Resolve ``name`` to a value (the paper's ``fetch``)."""
        self.lookup_count += 1
        if name == "_":
            entry = self.current_with()
            if entry is None:
                raise DuelNameError("_")
            return entry.underscore_value
        hit = self.fetch_with_field(name)
        if hit is not None:
            return hit
        alias = self._aliases.get(name)
        if alias is not None:
            return alias.with_sym(SymText(name))
        symbol = self.backend.get_target_variable(name)
        if symbol is not None:
            if symbol.ctype.is_function:
                return DuelValue(ctype=symbol.ctype, sym=SymText(name),
                                 value=symbol.address, func_name=name)
            return lvalue(symbol.ctype, symbol.address, SymText(name))
        constant = self.backend.enum_constant(name)
        if constant is not None:
            value, ctype = constant
            return rvalue(ctype, value, SymText(name))
        raise DuelNameError(name)

    def fetch_with_field(self, name: str) -> Optional[DuelValue]:
        """Search the with stack, innermost first, for a field ``name``."""
        for entry in reversed(self._with_stack):
            # frame(i) pseudo-values resolve names in that stack frame.
            frame_lookup = getattr(entry.value, "frame_variable", None)
            if frame_lookup is not None:
                symbol = frame_lookup(name)
                if symbol is not None:
                    return lvalue(symbol.ctype, symbol.address, SymText(name))
                continue
            record = entry.value.ctype.strip_typedefs()
            if not isinstance(record, RecordType) or not record.is_complete:
                continue
            field = record.field(name)
            if field is None:
                continue
            if not entry.value.is_lvalue:
                continue
            sym = self._field_sym(entry, name)
            return DuelValue(
                ctype=field.ctype, sym=sym,
                address=entry.value.address + field.offset,
                bit_offset=field.bit_offset, bit_width=field.bit_width)
        return None

    def _field_sym(self, entry: WithEntry, name: str) -> Sym:
        if entry.chain:
            return extend_chain(entry.value.sym, name)
        return SymField(entry.value.sym, name, arrow=entry.arrow)

    def is_alias(self, name: str) -> bool:
        return name in self._aliases
