"""DUEL-powered debugging facilities (the paper's §Discussion agenda).

The paper closes with three wished-for applications of DUEL beyond the
``duel`` command:

* "Duel would also be useful in other traditional debugging
  facilities, e.g., watchpoints and conditional breakpoints."
* "Annotating programs with assertions written in a Duel-like language
  might simplify making these kinds of assertions" (e.g. "x[0] through
  x[n] are positive").
* Exploring "unnamed" state such as a local in every active frame.

This package implements all three over the simulated inferior:
:class:`~repro.debugger.debugger.Debugger` runs mini-C programs under a
statement-level trace with DUEL-conditioned breakpoints, DUEL
watchpoints, and DUEL assertions.  The paper's caveat — "A faster
implementation would be required if Duel expressions were used in
watchpoints" — becomes measurable (benchmarks/bench_watchpoints.py).
"""

from repro.debugger.debugger import (
    Assertion,
    Breakpoint,
    Debugger,
    StopEvent,
    Watchpoint,
)

__all__ = ["Debugger", "Breakpoint", "Watchpoint", "Assertion",
           "StopEvent"]
