"""A breakpoint/watchpoint/assertion debugger driven by DUEL expressions.

Execution model: the mini-C interpreter emits trace events
(call/stmt/return); the :class:`Debugger` evaluates DUEL conditions at
those points.  When something fires, a :class:`StopEvent` is recorded
and the optional ``on_stop`` handler runs *at the stop point* — the
program's frames are live, so the handler can interrogate any state
through the attached :class:`~repro.core.session.DuelSession` (this is
what "stopped at a breakpoint" means here).  The handler may return
``"abort"`` to terminate the run.

Truth conventions follow DUEL's generator semantics:

* a breakpoint *condition* fires when the expression produces **any**
  non-zero value (so ``x[..100] >? 1000`` fires as soon as some element
  exceeds 1000);
* an *assertion* holds while **every** produced value is non-zero and
  it produces at least one value... unless declared ``allow_empty``
  (the paper's "x[0] through x[n] are positive" is ``x[..n] > 0``);
* a *watchpoint* fires when the produced value list changes between
  checkpoints.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.errors import DuelError
from repro.core.session import DuelSession
from repro.minic.runner import load_program
from repro.target.interface import SimulatorBackend
from repro.target.stdlib import TargetExit


class StopKind(enum.Enum):
    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    ASSERTION = "assertion"


@dataclass
class StopEvent:
    """One debugger stop: what fired, where, and what was observed."""

    kind: StopKind
    spec: object  # the Breakpoint/Watchpoint/Assertion that fired
    function: str
    line: int
    #: Watchpoints: (old_values, new_values); assertions: offending
    #: values; breakpoints: the condition's values (if conditioned).
    detail: object = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.kind.value} {describe(self.spec)} "
                f"in {self.function} at line {self.line}")


@dataclass
class Breakpoint:
    """Stop when ``function`` is entered (and ``condition`` fires)."""

    function: str
    condition: Optional[str] = None
    enabled: bool = True
    hits: int = 0
    id: int = 0


@dataclass
class Watchpoint:
    """Stop when the DUEL expression's value sequence changes."""

    expression: str
    enabled: bool = True
    hits: int = 0
    id: int = 0
    last: Optional[tuple] = None


@dataclass
class Assertion:
    """A DUEL invariant checked at every statement.

    Violated when any produced value is zero, or (unless
    ``allow_empty``) when the expression produces nothing.
    """

    expression: str
    allow_empty: bool = True
    enabled: bool = True
    violations: int = 0
    id: int = 0


def describe(spec) -> str:
    if isinstance(spec, Breakpoint):
        cond = f" if {spec.condition}" if spec.condition else ""
        return f"break {spec.function}{cond}"
    if isinstance(spec, Watchpoint):
        return f"watch {spec.expression}"
    if isinstance(spec, Assertion):
        return f"assert {spec.expression}"
    return repr(spec)


class Debugger:
    """Runs a mini-C program under DUEL-conditioned instrumentation."""

    def __init__(self, source: str,
                 on_stop: Optional[Callable] = None,
                 check_interval: int = 1):
        self.interp = load_program(source)
        self.program = self.interp.program
        self.session = DuelSession(SimulatorBackend(self.program))
        self.on_stop = on_stop
        #: Evaluate watchpoints/assertions every N statements (1 = the
        #: paper-faithful, expensive mode; raise to sample).
        self.check_interval = max(1, check_interval)
        self.stops: list[StopEvent] = []
        self.breakpoints: list[Breakpoint] = []
        self.watchpoints: list[Watchpoint] = []
        self.assertions: list[Assertion] = []
        #: Number of DUEL expression evaluations performed by hooks
        #: (the overhead the paper warns about; benchmarked in P6).
        self.condition_evals = 0
        self._ids = itertools.count(1)
        self._stmt_counter = 0
        self._aborted = False
        self.interp.trace = self._trace

    # -- configuration ---------------------------------------------------
    def break_at(self, function: str,
                 condition: Optional[str] = None) -> Breakpoint:
        bp = Breakpoint(function, condition, id=next(self._ids))
        self.breakpoints.append(bp)
        return bp

    def watch(self, expression: str) -> Watchpoint:
        self.session.compile(expression)  # validate eagerly
        wp = Watchpoint(expression, id=next(self._ids))
        self.watchpoints.append(wp)
        return wp

    def assert_always(self, expression: str,
                      allow_empty: bool = True) -> Assertion:
        self.session.compile(expression)
        asrt = Assertion(expression, allow_empty, id=next(self._ids))
        self.assertions.append(asrt)
        return asrt

    def delete(self, spec) -> None:
        for pool in (self.breakpoints, self.watchpoints, self.assertions):
            if spec in pool:
                pool.remove(spec)
                return
        raise ValueError(f"not installed: {describe(spec)}")

    # -- running -----------------------------------------------------------
    def run(self, argv: Optional[Sequence[str]] = None):
        """Run main() under instrumentation; returns its exit status."""
        self._aborted = False
        for wp in self.watchpoints:
            wp.last = self._safe_values(wp.expression)
        try:
            status = self.interp.run_main(argv)
        except TargetExit as stop:
            status = stop.status
        except _Abort:
            status = None
        return status

    def call(self, name: str, *args):
        """Call one target function under instrumentation."""
        self._aborted = False
        try:
            return self.interp.call(name, *args)
        except _Abort:
            return None

    def duel(self, text: str) -> list[str]:
        """One recovering ``duel`` command against the stopped program.

        Returns the printed lines.  Uses the session's robust drive: a
        mid-query ``DuelError`` still returns the partial results
        (followed by the error report), side-effecting queries roll the
        target back on failure, and the session remains usable.
        """
        import io
        buffer = io.StringIO()
        self.session.duel(text, out=buffer)
        return buffer.getvalue().splitlines()

    # -- checkpoints ---------------------------------------------------------
    def checkpoint(self):
        """Capture the target's state (rewind with :meth:`restore`)."""
        from repro.target import snapshot
        return snapshot.take(self.program)

    def restore(self, checkpoint) -> None:
        """Rewind the target to a previous :meth:`checkpoint`."""
        from repro.target import snapshot
        snapshot.restore(self.program, checkpoint)
        for wp in self.watchpoints:
            wp.last = self._safe_values(wp.expression)

    # -- trace hook -----------------------------------------------------------
    def _trace(self, event: str, payload) -> None:
        if self._aborted:
            return
        if event == "call":
            self._on_call(payload)
        elif event == "stmt":
            self._stmt_counter += 1
            if self._stmt_counter % self.check_interval == 0:
                self._on_stmt(payload)

    def _on_call(self, func) -> None:
        for bp in self.breakpoints:
            if not bp.enabled or bp.function != func.name:
                continue
            detail = None
            if bp.condition is not None:
                values = self._safe_values(bp.condition)
                if not any(values):
                    continue
                detail = values
            bp.hits += 1
            self._stop(StopEvent(StopKind.BREAKPOINT, bp, func.name,
                                 func.line, detail))

    def _on_stmt(self, stmt) -> None:
        function = self._current_function()
        for wp in self.watchpoints:
            if not wp.enabled:
                continue
            now = self._safe_values(wp.expression)
            if now != wp.last:
                old, wp.last = wp.last, now
                wp.hits += 1
                self._stop(StopEvent(StopKind.WATCHPOINT, wp, function,
                                     stmt.line, (old, now)))
            else:
                wp.last = now
        for asrt in self.assertions:
            if not asrt.enabled:
                continue
            values = self._safe_values(asrt.expression)
            empty_violation = not values and not asrt.allow_empty
            if empty_violation or any(v == 0 for v in values):
                asrt.violations += 1
                bad = [v for v in values if v == 0]
                self._stop(StopEvent(StopKind.ASSERTION, asrt, function,
                                     stmt.line, bad))

    def _stop(self, event: StopEvent) -> None:
        self.stops.append(event)
        if self.on_stop is not None:
            verdict = self.on_stop(event, self.session)
            if verdict == "abort":
                self._aborted = True
                raise _Abort()

    # -- helpers ----------------------------------------------------------------
    def _safe_values(self, expression: str) -> tuple:
        """Evaluate a DUEL expression, treating errors as 'no values'.

        A watch on ``head->next->v`` must not crash the run while the
        list is still being linked up; it simply produces nothing until
        the pointers are valid.
        """
        self.condition_evals += 1
        try:
            return tuple(self.session.eval_values(expression))
        except DuelError:
            return ()

    def _current_function(self) -> str:
        frame = self.program.stack.innermost
        return frame.function if frame is not None else "<global>"


class _Abort(Exception):
    """Internal: unwinds the interpreter when a handler says abort."""
