"""Deterministic workloads for tests and benchmarks.

Every builder is seeded and parameter-free (or parameterised by size),
so benchmark runs are reproducible.  The shapes are those the paper's
evaluation touches: int arrays, the 1024-bucket symbol hash, linked
lists with a duplicate, the example binary tree, and argv.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.target import builder
from repro.target.program import TargetProgram
from repro.target.stdlib import install_stdlib

_SEED = 19930107  # the conference date


def _fresh() -> TargetProgram:
    program = TargetProgram()
    install_stdlib(program)
    return program


def array100(program: TargetProgram | None = None) -> TargetProgram:
    """x[100] with a deterministic mix of signs (the abstract's query)."""
    program = program or _fresh()
    rng = random.Random(_SEED)
    values = [rng.randint(-50, 50) for _ in range(100)]
    builder.int_array(program, "x", values)
    return program


def big_array(n: int, program: TargetProgram | None = None) -> TargetProgram:
    """x[n] for the scaling benchmark (paper: x[..10000] >? 0)."""
    program = program or _fresh()
    rng = random.Random(_SEED + n)
    builder.int_array(program, "x",
                      [rng.randint(-1000, 1000) for _ in range(n)])
    return program


def hash_table(program: TargetProgram | None = None,
               buckets: int = 1024, fill: int = 64,
               chain: int = 4) -> TargetProgram:
    """The compiler symbol table: ``fill`` buckets of ``chain`` sorted
    symbols, plus the paper's specific fixture buckets."""
    program = program or _fresh()
    rng = random.Random(_SEED)
    entries = builder.paper_hash_entries()
    candidates = [b for b in range(buckets) if b not in entries]
    for bucket in rng.sample(candidates, fill):
        scopes = sorted((rng.randint(0, 5) for _ in range(chain)),
                        reverse=True)
        entries[bucket] = [(f"b{bucket}_{i}", s)
                           for i, s in enumerate(scopes)]
    builder.symbol_hash_table(program, buckets=buckets, entries=entries)
    return program


def dup_list(program: TargetProgram | None = None,
             length: int = 10) -> TargetProgram:
    """The Introduction's list L: duplicate 27s at positions 4 and 9."""
    program = program or _fresh()
    rng = random.Random(_SEED)
    values = []
    used = set()
    for _ in range(length):
        v = rng.randint(1, 99)
        while v in used or v == 27:
            v = rng.randint(1, 99)
        used.add(v)
        values.append(v)
    if length > 9:
        values[4] = 27
        values[9] = 27
    builder.linked_list(program, "L", values)
    return program


def head_list(program: TargetProgram | None = None) -> TargetProgram:
    """The ``head`` list whose positions 3 and 5 hold 33 and 29."""
    program = program or _fresh()
    builder.linked_list(program, "head", [11, 42, 5, 33, 19, 29, 8, 77])
    return program


def paper_tree(program: TargetProgram | None = None) -> TargetProgram:
    """The tree ``(9, (3 (4) (5)), (12))`` from §Syntax."""
    program = program or _fresh()
    builder.binary_tree(program, "root", (9, (3, 4, 5), 12))
    return program


def big_tree(n: int, program: TargetProgram | None = None) -> TargetProgram:
    """A BST of n pseudorandom keys under ``root`` (expansion benches)."""
    program = program or _fresh()
    rng = random.Random(_SEED + n)
    keys = rng.sample(range(10 * n), n)
    builder.bst_insert_all(program, "root", keys)
    return program


def long_list(n: int, program: TargetProgram | None = None) -> TargetProgram:
    """A list of n nodes under ``L`` (expansion benches)."""
    program = program or _fresh()
    rng = random.Random(_SEED + n)
    builder.linked_list(program, "L",
                        [rng.randint(0, 999) for _ in range(n)])
    return program


def argv_program(program: TargetProgram | None = None) -> TargetProgram:
    program = program or _fresh()
    program.set_argv(["prog", "-v", "file.c"])
    return program


WORKLOADS: dict[str, Callable[[], TargetProgram]] = {
    "array100": array100,
    "hash": hash_table,
    "dup_list": dup_list,
    "head_list": head_list,
    "tree": paper_tree,
    "argv": argv_program,
}


def build_workload(name: str) -> TargetProgram:
    """One shared inferior carrying every structure a named workload
    needs (queries may reference several)."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}")
    program = _fresh()
    if name == "hash":
        hash_table(program)
    elif name == "array100":
        array100(program)
    elif name == "dup_list":
        dup_list(program)
    elif name == "head_list":
        head_list(program)
    elif name == "tree":
        paper_tree(program)
    elif name == "argv":
        argv_program(program)
    return program


def paper_program() -> TargetProgram:
    """Everything the paper's worked examples touch, in one inferior."""
    program = _fresh()
    hash_table(program)
    array100(program)
    dup_list(program)
    head_list(program)
    paper_tree(program)
    argv_program(program)
    return program
