"""Benchmark support: deterministic workload builders."""

from repro.bench.workloads import build_workload, WORKLOADS

__all__ = ["build_workload", "WORKLOADS"]
