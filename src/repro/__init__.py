"""Reproduction of "DUEL — A Very High-Level Debugging Language"
(Golan & Hanson, USENIX Winter 1993).

Packages:

* :mod:`repro.core` — DUEL itself: lexer, parser, generator evaluator,
  symbolic display, the ``duel`` command.
* :mod:`repro.ctype` — the C type system DUEL carries with it.
* :mod:`repro.target` — the simulated inferior process and the paper's
  narrow debugger interface (plus a real-gdb adapter).
* :mod:`repro.minic` — a mini-C compiler/interpreter used to run target
  programs in the simulator and as the C-loop baseline.
* :mod:`repro.baseline` — paired DUEL-vs-C queries and conciseness
  metrics for the paper's expressiveness comparison.
* :mod:`repro.bench` — deterministic workload builders for benchmarks.
* :mod:`repro.obs` — query observability: per-node tracing, the
  process metrics registry, and EXPLAIN profile rendering.

Quick start::

    from repro import DuelSession, SimulatorBackend, TargetProgram
    from repro.target import builder

    program = TargetProgram()
    builder.int_array(program, "x", [3, -1, 7, 0, 12])
    duel = DuelSession(SimulatorBackend(program))
    print(duel.eval_lines("x[..5] >? 0"))
"""

from repro.core import DuelSession
from repro.obs import MetricsRegistry, QueryTracer
from repro.target import SimulatorBackend, TargetProgram

__version__ = "1.0.0"

__all__ = ["DuelSession", "MetricsRegistry", "QueryTracer",
           "SimulatorBackend", "TargetProgram", "__version__"]
