"""Type-kind enumeration and the primitive-type catalogue.

The catalogue pins down size, alignment, signedness and conversion rank
for every C primitive on the simulated target.  The default model is
LP64 little-endian (modern Unix); the paper's DECstation/SPARC hosts
were ILP32, and an ILP32 catalogue is provided for configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Kind(enum.Enum):
    """Discriminates the members of the CType hierarchy."""

    VOID = "void"
    BOOL = "bool"
    CHAR = "char"
    SCHAR = "signed char"
    UCHAR = "unsigned char"
    SHORT = "short"
    USHORT = "unsigned short"
    INT = "int"
    UINT = "unsigned int"
    LONG = "long"
    ULONG = "unsigned long"
    LLONG = "long long"
    ULLONG = "unsigned long long"
    FLOAT = "float"
    DOUBLE = "double"
    LDOUBLE = "long double"
    POINTER = "pointer"
    ARRAY = "array"
    STRUCT = "struct"
    UNION = "union"
    ENUM = "enum"
    FUNCTION = "function"
    TYPEDEF = "typedef"
    BITFIELD = "bitfield"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kind.{self.name}"


@dataclass(frozen=True)
class PrimitiveInfo:
    """Layout and classification facts for one primitive kind."""

    kind: Kind
    size: int
    align: int
    signed: bool
    is_float: bool
    rank: int  # C integer-conversion rank; floats ranked above all ints


def _info(kind: Kind, size: int, signed: bool, is_float: bool, rank: int) -> PrimitiveInfo:
    return PrimitiveInfo(kind=kind, size=size, align=size, signed=signed,
                         is_float=is_float, rank=rank)


#: LP64 primitive catalogue (char=1, short=2, int=4, long=8, ptr=8).
PRIMITIVES: dict[Kind, PrimitiveInfo] = {
    Kind.VOID: PrimitiveInfo(Kind.VOID, 0, 1, False, False, 0),
    Kind.BOOL: _info(Kind.BOOL, 1, False, False, 1),
    Kind.CHAR: _info(Kind.CHAR, 1, True, False, 2),
    Kind.SCHAR: _info(Kind.SCHAR, 1, True, False, 2),
    Kind.UCHAR: _info(Kind.UCHAR, 1, False, False, 2),
    Kind.SHORT: _info(Kind.SHORT, 2, True, False, 3),
    Kind.USHORT: _info(Kind.USHORT, 2, False, False, 3),
    Kind.INT: _info(Kind.INT, 4, True, False, 4),
    Kind.UINT: _info(Kind.UINT, 4, False, False, 4),
    Kind.LONG: _info(Kind.LONG, 8, True, False, 5),
    Kind.ULONG: _info(Kind.ULONG, 8, False, False, 5),
    Kind.LLONG: _info(Kind.LLONG, 8, True, False, 6),
    Kind.ULLONG: _info(Kind.ULLONG, 8, False, False, 6),
    Kind.FLOAT: _info(Kind.FLOAT, 4, True, True, 10),
    Kind.DOUBLE: _info(Kind.DOUBLE, 8, True, True, 11),
    # long double is modelled as a 16-byte slot holding a double value.
    Kind.LDOUBLE: PrimitiveInfo(Kind.LDOUBLE, 16, 16, True, True, 12),
}

#: ILP32 catalogue matching the paper's workstations (long=4, ptr=4).
PRIMITIVES_ILP32: dict[Kind, PrimitiveInfo] = dict(PRIMITIVES)
PRIMITIVES_ILP32[Kind.LONG] = _info(Kind.LONG, 4, True, False, 5)
PRIMITIVES_ILP32[Kind.ULONG] = _info(Kind.ULONG, 4, False, False, 5)
PRIMITIVES_ILP32[Kind.LDOUBLE] = PrimitiveInfo(Kind.LDOUBLE, 8, 8, True, True, 12)

#: Pointer width of the default (LP64) model, in bytes.
POINTER_SIZE = 8
POINTER_ALIGN = 8

#: Byte order of the simulated target.
BYTE_ORDER = "little"

#: Kinds that participate in integer arithmetic.
INTEGER_KINDS = frozenset(
    k for k, info in PRIMITIVES.items()
    if not info.is_float and k not in (Kind.VOID,)
)

#: Kinds that are floating point.
FLOAT_KINDS = frozenset(k for k, info in PRIMITIVES.items() if info.is_float)

#: Map from the unsigned kind paired with each signed kind (and back).
UNSIGNED_OF: dict[Kind, Kind] = {
    Kind.CHAR: Kind.UCHAR,
    Kind.SCHAR: Kind.UCHAR,
    Kind.SHORT: Kind.USHORT,
    Kind.INT: Kind.UINT,
    Kind.LONG: Kind.ULONG,
    Kind.LLONG: Kind.ULLONG,
}


def int_bounds(kind: Kind, catalogue: dict[Kind, PrimitiveInfo] | None = None) -> tuple[int, int]:
    """Return the inclusive (min, max) representable by an integer kind."""
    info = (catalogue or PRIMITIVES)[kind]
    if info.is_float or kind is Kind.VOID:
        raise ValueError(f"{kind} is not an integer kind")
    bits = info.size * 8
    if info.signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


def wrap_int(value: int, kind: Kind, catalogue: dict[Kind, PrimitiveInfo] | None = None) -> int:
    """Reduce ``value`` modulo the kind's width, as C integer overflow does.

    Signed overflow is undefined in C; like most debuggers we adopt
    two's-complement wraparound, which matches the bytes in memory.
    """
    info = (catalogue or PRIMITIVES)[kind]
    bits = info.size * 8
    value &= (1 << bits) - 1
    if info.signed and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value
