"""Parser for C declaration syntax.

Turns declaration strings such as

    struct symbol { char *name; int scope; struct symbol *next; } *hash[1024];

into :class:`~repro.ctype.types.CType` objects plus declared names.
Used by the target-program builder (to declare globals), by DUEL's
``duel int i;`` debugger declarations, and by cast expressions
(``(struct symbol *)p``).

The grammar covers the declaration subset needed for debugging real C
programs: all primitive specifiers, struct/union/enum definitions and
references (including self-referential pointers), typedefs, pointers,
arrays (with constant-expression sizes), bit-fields, and function
declarators (for prototypes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.ctype.layout import MemberDecl, complete_struct, complete_union
from repro.ctype.types import (
    ArrayType,
    BOOL,
    CHAR,
    CType,
    DOUBLE,
    EnumType,
    FLOAT,
    FunctionType,
    INT,
    LDOUBLE,
    LLONG,
    LONG,
    PointerType,
    SCHAR,
    SHORT,
    StructType,
    TypedefType,
    UCHAR,
    UINT,
    ULLONG,
    ULONG,
    UnionType,
    USHORT,
    VOID,
)


class DeclError(SyntaxError):
    """Raised on malformed declarations."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<punct><<|>>|\.\.\.|[-+*/%&|^~!<>=(){}\[\];:,.?])
""", re.VERBOSE | re.DOTALL)

_SPECIFIER_WORDS = frozenset(
    "void char short int long signed unsigned float double _Bool "
    "struct union enum const volatile typedef static extern register "
    "auto".split()
)

_BASE_COMBOS: dict[tuple[str, ...], CType] = {
    ("void",): VOID,
    ("_Bool",): BOOL,
    ("char",): CHAR,
    ("char", "signed"): SCHAR,
    ("char", "unsigned"): UCHAR,
    ("short",): SHORT,
    ("short", "signed"): SHORT,
    ("int", "short"): SHORT,
    ("int", "short", "signed"): SHORT,
    ("short", "unsigned"): USHORT,
    ("int", "short", "unsigned"): USHORT,
    ("int",): INT,
    ("signed",): INT,
    ("int", "signed"): INT,
    ("unsigned",): UINT,
    ("int", "unsigned"): UINT,
    ("long",): LONG,
    ("long", "signed"): LONG,
    ("int", "long"): LONG,
    ("int", "long", "signed"): LONG,
    ("long", "unsigned"): ULONG,
    ("int", "long", "unsigned"): ULONG,
    ("long", "long"): LLONG,
    ("long", "long", "signed"): LLONG,
    ("int", "long", "long"): LLONG,
    ("int", "long", "long", "signed"): LLONG,
    ("long", "long", "unsigned"): ULLONG,
    ("int", "long", "long", "unsigned"): ULLONG,
    ("float",): FLOAT,
    ("double",): DOUBLE,
    ("double", "long"): LDOUBLE,
}


class TypeEnv:
    """Registry of struct/union/enum tags and typedef names.

    A target program owns one of these; nested scopes are not needed for
    declarations at debugger level (C file scope suffices).
    """

    def __init__(self) -> None:
        self.structs: dict[str, StructType] = {}
        self.unions: dict[str, UnionType] = {}
        self.enums: dict[str, EnumType] = {}
        self.typedefs: dict[str, TypedefType] = {}
        self.enum_constants: dict[str, tuple[int, EnumType]] = {}

    def struct_tag(self, tag: str) -> StructType:
        """Fetch or forward-declare ``struct tag``."""
        if tag not in self.structs:
            self.structs[tag] = StructType(tag)
        return self.structs[tag]

    def union_tag(self, tag: str) -> UnionType:
        if tag not in self.unions:
            self.unions[tag] = UnionType(tag)
        return self.unions[tag]

    def enum_tag(self, tag: str) -> EnumType:
        if tag not in self.enums:
            self.enums[tag] = EnumType(tag)
        return self.enums[tag]

    def add_typedef(self, name: str, target: CType) -> TypedefType:
        td = TypedefType(name, target)
        self.typedefs[name] = td
        return td

    def is_type_name(self, name: str) -> bool:
        return name in self.typedefs

    def register_enumerators(self, enum: EnumType) -> None:
        for name, value in enum.enumerators.items():
            self.enum_constants[name] = (value, enum)


@dataclass
class Declaration:
    """One declared name with its resolved type."""

    name: str
    ctype: CType
    is_typedef: bool = False


class _Tokens:
    """Tiny token cursor over a declaration string."""

    def __init__(self, text: str):
        self.toks: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                raise DeclError(f"bad character {text[pos]!r} in declaration")
            pos = m.end()
            if m.lastgroup == "ws":
                continue
            self.toks.append((m.lastgroup, m.group()))
        self.i = 0

    def peek(self) -> tuple[str, str]:
        if self.i < len(self.toks):
            return self.toks[self.i]
        return ("eof", "")

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        self.i += 1
        return tok

    def accept(self, text: str) -> bool:
        if self.peek()[1] == text:
            self.i += 1
            return True
        return False

    def expect(self, text: str) -> None:
        kind, tok = self.next()
        if tok != text:
            raise DeclError(f"expected {text!r}, found {tok or 'end of input'!r}")

    @property
    def at_end(self) -> bool:
        return self.i >= len(self.toks)


class DeclParser:
    """Parses one or more C declarations against a :class:`TypeEnv`."""

    def __init__(self, env: Optional[TypeEnv] = None):
        self.env = env if env is not None else TypeEnv()

    # -- public API ---------------------------------------------------
    def parse(self, text: str) -> list[Declaration]:
        """Parse semicolon-separated declarations; returns all names."""
        toks = _Tokens(text)
        decls: list[Declaration] = []
        while not toks.at_end:
            decls.extend(self._declaration(toks))
        return decls

    def parse_type(self, text: str) -> CType:
        """Parse an abstract type name (as in a cast), e.g. ``int *[3]``."""
        toks = _Tokens(text)
        base = self._specifiers(toks)
        name, ctype = self._declarator(toks, base, abstract=True)
        if name:
            raise DeclError(f"unexpected identifier {name!r} in type name")
        if not toks.at_end:
            raise DeclError(f"trailing tokens after type name: {toks.peek()[1]!r}")
        return ctype

    # -- declarations --------------------------------------------------
    def _declaration(self, toks: _Tokens) -> list[Declaration]:
        is_typedef = False
        # storage-class keywords are accepted and ignored (typedef acts).
        while toks.peek()[1] in ("typedef", "static", "extern", "register", "auto"):
            if toks.next()[1] == "typedef":
                is_typedef = True
        base = self._specifiers(toks)
        decls: list[Declaration] = []
        if toks.accept(";"):
            return decls  # bare "struct s {...};" defines the tag only
        while True:
            name, ctype = self._declarator(toks, base, abstract=False)
            if not name:
                raise DeclError("declaration is missing a name")
            if is_typedef:
                self.env.add_typedef(name, ctype)
                decls.append(Declaration(name, self.env.typedefs[name], True))
            else:
                decls.append(Declaration(name, ctype))
            if toks.accept(","):
                continue
            toks.expect(";")
            break
        return decls

    # -- specifiers ----------------------------------------------------
    def _specifiers(self, toks: _Tokens) -> CType:
        words: list[str] = []
        record: Optional[CType] = None
        while True:
            kind, tok = toks.peek()
            if tok in ("const", "volatile"):
                toks.next()
                continue
            if tok == "struct" or tok == "union":
                toks.next()
                record = self._record(toks, tok)
                continue
            if tok == "enum":
                toks.next()
                record = self._enum(toks)
                continue
            if tok in _SPECIFIER_WORDS and tok not in (
                    "typedef", "static", "extern", "register", "auto"):
                words.append(toks.next()[1])
                continue
            if (kind == "name" and self.env.is_type_name(tok)
                    and not words and record is None):
                toks.next()
                return self.env.typedefs[tok]
            break
        if record is not None:
            if words:
                raise DeclError("cannot mix record and primitive specifiers")
            return record
        if not words:
            raise DeclError(f"expected type specifier, found {toks.peek()[1]!r}")
        combo = tuple(sorted(words))
        if combo not in _BASE_COMBOS:
            raise DeclError(f"invalid type specifier combination {' '.join(words)!r}")
        return _BASE_COMBOS[combo]

    def _record(self, toks: _Tokens, keyword: str) -> CType:
        tag = None
        if toks.peek()[0] == "name":
            tag = toks.next()[1]
        if keyword == "struct":
            record = self.env.struct_tag(tag) if tag else StructType(None)
        else:
            record = self.env.union_tag(tag) if tag else UnionType(None)
        if toks.accept("{"):
            members: list[MemberDecl] = []
            while not toks.accept("}"):
                members.extend(self._member(toks))
            if keyword == "struct":
                complete_struct(record, members)
            else:
                complete_union(record, members)
        return record

    def _member(self, toks: _Tokens) -> list[MemberDecl]:
        base = self._specifiers(toks)
        members: list[MemberDecl] = []
        if toks.accept(";"):
            # Anonymous struct/union member.
            members.append(MemberDecl(name="", ctype=base))
            return members
        while True:
            if toks.peek()[1] == ":":  # unnamed bit-field
                toks.next()
                width = self._const_expr(toks)
                members.append(MemberDecl(name="", ctype=base, bit_width=width))
            else:
                name, ctype = self._declarator(toks, base, abstract=False)
                if not name:
                    raise DeclError("struct member is missing a name")
                width = None
                if toks.accept(":"):
                    width = self._const_expr(toks)
                members.append(MemberDecl(name=name, ctype=ctype, bit_width=width))
            if toks.accept(","):
                continue
            toks.expect(";")
            break
        return members

    def _enum(self, toks: _Tokens) -> EnumType:
        tag = None
        if toks.peek()[0] == "name":
            tag = toks.next()[1]
        enum = self.env.enum_tag(tag) if tag else EnumType(None)
        if toks.accept("{"):
            value = 0
            while not toks.accept("}"):
                kind, name = toks.next()
                if kind != "name":
                    raise DeclError(f"expected enumerator name, found {name!r}")
                if toks.accept("="):
                    value = self._const_expr(toks)
                enum.enumerators[name] = value
                value += 1
                if not toks.accept(","):
                    toks.expect("}")
                    break
            self.env.register_enumerators(enum)
        return enum

    # -- declarators ----------------------------------------------------
    def _declarator(self, toks: _Tokens, base: CType,
                    abstract: bool) -> tuple[str, CType]:
        """Parse a (possibly abstract) declarator.

        Uses the standard two-pass trick: collect pointer prefixes, then
        the direct declarator, then apply array/function suffixes from
        the inside out.
        """
        while toks.accept("*"):
            while toks.peek()[1] in ("const", "volatile"):
                toks.next()
            base = PointerType(base)
        name = ""
        inner: Optional[Callable[[CType], tuple[str, CType]]] = None
        kind, tok = toks.peek()
        if tok == "(" and self._is_nested_declarator(toks):
            toks.next()
            saved = toks.i
            # Parse the nested declarator later, against the suffixed base.
            depth = 1
            while depth:
                t = toks.next()[1]
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                elif t == "":
                    raise DeclError("unterminated ( in declarator")
            end = toks.i - 1

            def inner(ct: CType, start=saved, stop=end) -> tuple[str, CType]:
                sub = _Tokens("")
                sub.toks = toks.toks[start:stop]
                n, t2 = self._declarator(sub, ct, abstract)
                if not sub.at_end:
                    raise DeclError("trailing tokens in nested declarator")
                return n, t2
        elif kind == "name" and tok not in _SPECIFIER_WORDS:
            if self.env.is_type_name(tok) and abstract:
                pass  # a typedef name here belongs to an outer context
            else:
                name = toks.next()[1]
        # Suffixes: arrays and function parameter lists.
        suffixes: list[tuple[str, object]] = []
        while True:
            if toks.accept("["):
                if toks.accept("]"):
                    suffixes.append(("array", None))
                else:
                    length = self._const_expr(toks)
                    toks.expect("]")
                    suffixes.append(("array", length))
            elif toks.peek()[1] == "(" and inner is None and (name or abstract):
                toks.next()
                params, varargs = self._params(toks)
                suffixes.append(("func", (params, varargs)))
            elif toks.peek()[1] == "(" and inner is not None:
                toks.next()
                params, varargs = self._params(toks)
                suffixes.append(("func", (params, varargs)))
            else:
                break
        ctype = base
        for tag, payload in reversed(suffixes):
            if tag == "array":
                ctype = ArrayType(ctype, payload)  # type: ignore[arg-type]
            else:
                params, varargs = payload  # type: ignore[misc]
                ctype = FunctionType(ctype, tuple(params), varargs)
        if inner is not None:
            return inner(ctype)
        return name, ctype

    def _is_nested_declarator(self, toks: _Tokens) -> bool:
        """Disambiguate ``(`` starting a nested declarator vs a prototype."""
        nxt = toks.toks[toks.i + 1][1] if toks.i + 1 < len(toks.toks) else ""
        if nxt == "*" or nxt == "(":
            return True
        if nxt == ")":
            return False
        kindn = toks.toks[toks.i + 1][0] if toks.i + 1 < len(toks.toks) else "eof"
        if kindn == "name" and nxt not in _SPECIFIER_WORDS and not self.env.is_type_name(nxt):
            return True
        return False

    def _params(self, toks: _Tokens) -> tuple[list[CType], bool]:
        params: list[CType] = []
        varargs = False
        if toks.accept(")"):
            return params, varargs
        while True:
            if toks.accept("..."):
                varargs = True
                toks.expect(")")
                break
            base = self._specifiers(toks)
            _, ctype = self._declarator(toks, base, abstract=True)
            if ctype.is_void and not ctype.is_pointer:
                pass  # (void) parameter list
            else:
                if ctype.is_array:
                    ctype = ctype.strip_typedefs().decay()  # type: ignore[union-attr]
                params.append(ctype)
            if toks.accept(","):
                continue
            toks.expect(")")
            break
        return params, varargs

    # -- constant expressions -------------------------------------------
    def _const_expr(self, toks: _Tokens) -> int:
        return self._const_add(toks)

    def _const_add(self, toks: _Tokens) -> int:
        value = self._const_mul(toks)
        while toks.peek()[1] in ("+", "-"):
            op = toks.next()[1]
            rhs = self._const_mul(toks)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _const_mul(self, toks: _Tokens) -> int:
        value = self._const_shift(toks)
        while toks.peek()[1] in ("*", "/", "%"):
            op = toks.next()[1]
            rhs = self._const_shift(toks)
            if op == "*":
                value *= rhs
            elif op == "/":
                value = int(value / rhs)
            else:
                value %= rhs
        return value

    def _const_shift(self, toks: _Tokens) -> int:
        value = self._const_primary(toks)
        while toks.peek()[1] in ("<<", ">>"):
            op = toks.next()[1]
            rhs = self._const_primary(toks)
            value = value << rhs if op == "<<" else value >> rhs
        return value

    def _const_primary(self, toks: _Tokens) -> int:
        kind, tok = toks.next()
        if kind == "num":
            return int(tok, 0)
        if tok == "-":
            return -self._const_primary(toks)
        if tok == "(":
            value = self._const_expr(toks)
            toks.expect(")")
            return value
        if kind == "name" and tok in self.env.enum_constants:
            return self.env.enum_constants[tok][0]
        raise DeclError(f"expected constant expression, found {tok!r}")


def parse_type(text: str, env: Optional[TypeEnv] = None) -> CType:
    """Module-level convenience for :meth:`DeclParser.parse_type`."""
    return DeclParser(env).parse_type(text)

