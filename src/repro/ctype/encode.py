"""Byte-level codecs: Python values <-> target memory bytes.

All scalar loads and stores in the simulated debugger funnel through
:func:`encode_value` and :func:`decode_value`, so endianness and width
rules live in exactly one place.
"""

from __future__ import annotations

import struct

from repro.ctype.kinds import BYTE_ORDER, Kind, PRIMITIVES, wrap_int
from repro.ctype.types import (
    BitFieldType,
    CType,
    EnumType,
    PointerType,
    PrimitiveType,
)


class EncodeError(TypeError):
    """Raised when a value cannot be encoded/decoded for a type."""


_FLOAT_FORMATS = {4: "<f", 8: "<d"}


def encode_value(value, ctype: CType) -> bytes:
    """Encode a Python number as the in-memory bytes of ``ctype``."""
    t = ctype.strip_typedefs()
    if isinstance(t, PointerType):
        return int(value).to_bytes(t.size, BYTE_ORDER, signed=False)
    if isinstance(t, EnumType):
        return wrap_int(int(value), Kind.INT).to_bytes(
            t.size, BYTE_ORDER, signed=True)
    if isinstance(t, BitFieldType):
        # Bit-fields are stored via read-modify-write of the allocation
        # unit; callers encode the unit with the base type.
        raise EncodeError("bit-field values are encoded via their base unit")
    if not isinstance(t, PrimitiveType):
        raise EncodeError(f"cannot encode scalar into {ctype}")
    info = PRIMITIVES[t.kind]
    if t.kind is Kind.VOID:
        raise EncodeError("cannot encode a void value")
    if info.is_float:
        fmt = _FLOAT_FORMATS.get(info.size)
        if fmt is None:  # long double slot: store a double + padding
            return struct.pack("<d", float(value)).ljust(info.size, b"\0")
        return struct.pack(fmt, float(value))
    if t.kind is Kind.BOOL:
        return (b"\x01" if value else b"\x00")
    wrapped = wrap_int(int(value), t.kind)
    return wrapped.to_bytes(info.size, BYTE_ORDER, signed=info.signed)


def decode_value(data: bytes, ctype: CType):
    """Decode target bytes into a Python number for ``ctype``."""
    t = ctype.strip_typedefs()
    if isinstance(t, PointerType):
        _require(data, t.size, ctype)
        return int.from_bytes(data[:t.size], BYTE_ORDER, signed=False)
    if isinstance(t, EnumType):
        _require(data, t.size, ctype)
        return int.from_bytes(data[:t.size], BYTE_ORDER, signed=True)
    if not isinstance(t, PrimitiveType):
        raise EncodeError(f"cannot decode scalar from {ctype}")
    info = PRIMITIVES[t.kind]
    if t.kind is Kind.VOID:
        raise EncodeError("cannot decode a void value")
    _require(data, info.size, ctype)
    if info.is_float:
        fmt = _FLOAT_FORMATS.get(info.size)
        if fmt is None:
            return struct.unpack("<d", data[:8])[0]
        return struct.unpack(fmt, data[:info.size])[0]
    if t.kind is Kind.BOOL:
        return 1 if data[0] else 0
    return int.from_bytes(data[:info.size], BYTE_ORDER, signed=info.signed)


def extract_bitfield(unit: int, bit_offset: int, width: int, signed: bool) -> int:
    """Extract a bit-field value from its loaded allocation unit.

    Little-endian bit-field convention: bit 0 of the unit is the least
    significant bit.
    """
    value = (unit >> bit_offset) & ((1 << width) - 1)
    if signed and width > 0 and value >= 1 << (width - 1):
        value -= 1 << width
    return value


def insert_bitfield(unit: int, bit_offset: int, width: int, value: int) -> int:
    """Insert a bit-field value into its allocation unit, returning the unit."""
    mask = ((1 << width) - 1) << bit_offset
    return (unit & ~mask) | ((value << bit_offset) & mask)


def _require(data: bytes, size: int, ctype: CType) -> None:
    if len(data) < size:
        raise EncodeError(
            f"short read: {len(data)} bytes for {ctype} (need {size})")
