"""Record layout: sizeof/alignof/offsetof computation.

Implements System-V-style layout: members are placed at the next offset
aligned to their natural alignment; the struct size is rounded up to
the maximum member alignment.  Bit-fields pack into allocation units of
their declared base type; a bit-field that would straddle a unit
boundary starts a new unit, and a zero-width bit-field closes the
current unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ctype.types import CType, Field, StructType, UnionType


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"bad alignment {alignment}")
    return (value + alignment - 1) // alignment * alignment


@dataclass
class MemberDecl:
    """A declared member, pre-layout: name, type, optional bit width."""

    name: str
    ctype: CType
    bit_width: Optional[int] = None


def layout_struct(members: Sequence[MemberDecl]) -> tuple[list[Field], int, int]:
    """Place struct members; returns (fields, size, align)."""
    fields: list[Field] = []
    offset = 0  # running byte offset
    max_align = 1
    # Bit-field packing state: current allocation unit.
    unit_offset = -1  # byte offset of the open unit, -1 when closed
    unit_size = 0
    bits_used = 0

    for m in members:
        if m.bit_width is not None:
            base = m.ctype.strip_typedefs()
            if not base.is_integer:
                raise TypeError(f"bit-field {m.name!r} has non-integer type {m.ctype}")
            width = m.bit_width
            if width < 0 or width > base.size * 8:
                raise TypeError(f"bit-field {m.name!r} width {width} out of range")
            if width == 0:
                # Zero-width bit-field: close the current unit.
                if unit_offset >= 0:
                    offset = unit_offset + unit_size
                unit_offset = -1
                bits_used = 0
                continue
            unit_bits = base.size * 8
            starts_new_unit = (
                unit_offset < 0
                or base.size != unit_size
                or bits_used + width > unit_bits
            )
            if starts_new_unit:
                if unit_offset >= 0:
                    offset = unit_offset + unit_size
                offset = align_up(offset, base.align)
                unit_offset = offset
                unit_size = base.size
                bits_used = 0
            fields.append(Field(
                name=m.name,
                ctype=m.ctype,
                offset=unit_offset,
                bit_offset=bits_used,
                bit_width=width,
            ))
            bits_used += width
            max_align = max(max_align, base.align)
            continue

        # Ordinary member: close any open bit-field unit first.
        if unit_offset >= 0:
            offset = unit_offset + unit_size
            unit_offset = -1
            bits_used = 0
        align = m.ctype.align
        offset = align_up(offset, align)
        fields.append(Field(name=m.name, ctype=m.ctype, offset=offset))
        offset += m.ctype.size
        max_align = max(max_align, align)

    if unit_offset >= 0:
        offset = unit_offset + unit_size
    size = align_up(max(offset, 1), max_align) if members else 0
    if not members:
        size = 0
    return fields, size, max_align


def layout_union(members: Sequence[MemberDecl]) -> tuple[list[Field], int, int]:
    """Place union members (all at offset 0); returns (fields, size, align)."""
    fields: list[Field] = []
    size = 0
    max_align = 1
    for m in members:
        if m.bit_width is not None:
            base = m.ctype.strip_typedefs()
            if not base.is_integer:
                raise TypeError(f"bit-field {m.name!r} has non-integer type {m.ctype}")
            fields.append(Field(
                name=m.name, ctype=m.ctype, offset=0,
                bit_offset=0, bit_width=m.bit_width,
            ))
            size = max(size, base.size)
            max_align = max(max_align, base.align)
        else:
            fields.append(Field(name=m.name, ctype=m.ctype, offset=0))
            size = max(size, m.ctype.size)
            max_align = max(max_align, m.ctype.align)
    return fields, align_up(max(size, 0), max_align) if members else 0, max_align


def complete_struct(record: StructType, members: Sequence[MemberDecl]) -> StructType:
    """Compute layout for ``members`` and complete ``record`` with it."""
    fields, size, align = layout_struct(members)
    record.complete(fields, size, align)
    return record


def complete_union(record: UnionType, members: Sequence[MemberDecl]) -> UnionType:
    """Compute layout for ``members`` and complete ``record`` with it."""
    fields, size, align = layout_union(members)
    record.complete(fields, size, align)
    return record


def make_struct(tag: str | None, members: Sequence[MemberDecl]) -> StructType:
    """Create and complete a struct type in one step."""
    return complete_struct(StructType(tag), members)


def make_union(tag: str | None, members: Sequence[MemberDecl]) -> UnionType:
    """Create and complete a union type in one step."""
    return complete_union(UnionType(tag), members)
