"""The CType hierarchy.

Types are immutable value objects except for record types
(struct/union/enum), which may be declared first and completed later to
support self-referential declarations such as

    struct symbol { char *name; int scope; struct symbol *next; };

Type identity follows C: primitives compare by kind, derived types
structurally, and records nominally (by object identity, with a tag for
display).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.ctype.kinds import (
    BYTE_ORDER,
    FLOAT_KINDS,
    INTEGER_KINDS,
    Kind,
    POINTER_ALIGN,
    POINTER_SIZE,
    PRIMITIVES,
)


class CType:
    """Base class of all C types in the model."""

    kind: Kind

    # --- classification helpers -------------------------------------
    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False

    @property
    def is_record(self) -> bool:
        return False

    @property
    def is_function(self) -> bool:
        return False

    @property
    def is_void(self) -> bool:
        return False

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    def strip_typedefs(self) -> "CType":
        """Resolve through typedef layers to the underlying type."""
        return self

    # --- layout (filled in by repro.ctype.layout) --------------------
    @property
    def size(self) -> int:
        """sizeof() in bytes."""
        raise NotImplementedError

    @property
    def align(self) -> int:
        """Required alignment in bytes."""
        raise NotImplementedError

    # --- display ------------------------------------------------------
    def name(self) -> str:
        """C spelling of the type (approximate, for display)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name()!r}>"


@dataclass(frozen=True)
class PrimitiveType(CType):
    """A C primitive: void, _Bool, the integer family, the float family."""

    kind: Kind

    def __post_init__(self) -> None:
        if self.kind not in PRIMITIVES:
            raise ValueError(f"not a primitive kind: {self.kind}")

    @property
    def is_integer(self) -> bool:
        return self.kind in INTEGER_KINDS

    @property
    def is_float(self) -> bool:
        return self.kind in FLOAT_KINDS

    @property
    def is_void(self) -> bool:
        return self.kind is Kind.VOID

    @property
    def signed(self) -> bool:
        return PRIMITIVES[self.kind].signed

    @property
    def rank(self) -> int:
        return PRIMITIVES[self.kind].rank

    @property
    def size(self) -> int:
        return PRIMITIVES[self.kind].size

    @property
    def align(self) -> int:
        return PRIMITIVES[self.kind].align

    def name(self) -> str:
        return self.kind.value


# Singleton primitive instances (compare equal by dataclass equality).
VOID = PrimitiveType(Kind.VOID)
BOOL = PrimitiveType(Kind.BOOL)
CHAR = PrimitiveType(Kind.CHAR)
SCHAR = PrimitiveType(Kind.SCHAR)
UCHAR = PrimitiveType(Kind.UCHAR)
SHORT = PrimitiveType(Kind.SHORT)
USHORT = PrimitiveType(Kind.USHORT)
INT = PrimitiveType(Kind.INT)
UINT = PrimitiveType(Kind.UINT)
LONG = PrimitiveType(Kind.LONG)
ULONG = PrimitiveType(Kind.ULONG)
LLONG = PrimitiveType(Kind.LLONG)
ULLONG = PrimitiveType(Kind.ULLONG)
FLOAT = PrimitiveType(Kind.FLOAT)
DOUBLE = PrimitiveType(Kind.DOUBLE)
LDOUBLE = PrimitiveType(Kind.LDOUBLE)


@dataclass(frozen=True)
class PointerType(CType):
    """Pointer to ``target`` type."""

    target: CType
    kind: Kind = field(default=Kind.POINTER, init=False)

    @property
    def is_pointer(self) -> bool:
        return True

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def align(self) -> int:
        return POINTER_ALIGN

    def name(self) -> str:
        inner = self.target.name()
        if self.target.is_function:
            return f"{inner} (*)"
        return f"{inner} *"


@dataclass(frozen=True)
class ArrayType(CType):
    """Array of ``length`` elements of ``element`` type.

    ``length is None`` models an incomplete array (``char []``).
    """

    element: CType
    length: Optional[int]
    kind: Kind = field(default=Kind.ARRAY, init=False)

    @property
    def is_array(self) -> bool:
        return True

    @property
    def size(self) -> int:
        if self.length is None:
            raise TypeError(f"sizeof incomplete array type {self.name()}")
        return self.element.size * self.length

    @property
    def align(self) -> int:
        return self.element.align

    def name(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element.name()} [{n}]"

    def decay(self) -> PointerType:
        """Array-to-pointer decay type."""
        return PointerType(self.element)


@dataclass(frozen=True)
class Field:
    """One member of a struct or union.

    ``bit_offset``/``bit_width`` are set only for bit-field members; for
    ordinary members ``offset`` is the byte offset and the bit fields are
    ``None``.
    """

    name: str
    ctype: CType
    offset: int
    bit_offset: Optional[int] = None
    bit_width: Optional[int] = None

    @property
    def is_bitfield(self) -> bool:
        return self.bit_width is not None


class RecordType(CType):
    """Common behaviour of struct and union types.

    Records are nominal and completable: created with a tag, completed
    once with their field list (layout computed by
    :mod:`repro.ctype.layout`).
    """

    def __init__(self, tag: str | None):
        self.tag = tag
        self._fields: list[Field] = []
        self._size: Optional[int] = None
        self._align: Optional[int] = None

    @property
    def is_record(self) -> bool:
        return True

    @property
    def is_complete(self) -> bool:
        return self._size is not None

    def complete(self, fields: Sequence[Field], size: int, align: int) -> None:
        if self.is_complete:
            raise TypeError(f"redefinition of {self.name()}")
        self._fields = list(fields)
        self._size = size
        self._align = align

    @property
    def fields(self) -> list[Field]:
        if not self.is_complete:
            raise TypeError(f"use of incomplete type {self.name()}")
        return self._fields

    def field(self, name: str) -> Optional[Field]:
        """Look up a member by name, descending into anonymous members."""
        if not self.is_complete:
            raise TypeError(f"use of incomplete type {self.name()}")
        for f in self._fields:
            if f.name == name:
                return f
            if not f.name:  # anonymous struct/union member
                inner = f.ctype.strip_typedefs()
                if isinstance(inner, RecordType):
                    sub = inner.field(name)
                    if sub is not None:
                        return Field(
                            name=sub.name,
                            ctype=sub.ctype,
                            offset=f.offset + sub.offset,
                            bit_offset=sub.bit_offset,
                            bit_width=sub.bit_width,
                        )
        return None

    def field_names(self) -> list[str]:
        names: list[str] = []
        for f in self.fields:
            if f.name:
                names.append(f.name)
            else:
                inner = f.ctype.strip_typedefs()
                if isinstance(inner, RecordType):
                    names.extend(inner.field_names())
        return names

    @property
    def size(self) -> int:
        if self._size is None:
            raise TypeError(f"sizeof incomplete type {self.name()}")
        return self._size

    @property
    def align(self) -> int:
        if self._align is None:
            raise TypeError(f"alignof incomplete type {self.name()}")
        return self._align

    def name(self) -> str:
        keyword = "struct" if self.kind is Kind.STRUCT else "union"
        return f"{keyword} {self.tag}" if self.tag else f"{keyword} <anonymous>"

    def __repr__(self) -> str:
        state = "complete" if self.is_complete else "incomplete"
        return f"<{type(self).__name__} {self.name()!r} {state}>"


class StructType(RecordType):
    kind = Kind.STRUCT


class UnionType(RecordType):
    kind = Kind.UNION


class EnumType(CType):
    """An enum: nominal, with named integer constants, int-sized."""

    kind = Kind.ENUM

    def __init__(self, tag: str | None, enumerators: Iterable[tuple[str, int]] = ()):
        self.tag = tag
        self.enumerators: dict[str, int] = dict(enumerators)

    @property
    def is_integer(self) -> bool:
        return True

    @property
    def signed(self) -> bool:
        return True

    @property
    def rank(self) -> int:
        return PRIMITIVES[Kind.INT].rank

    @property
    def size(self) -> int:
        return PRIMITIVES[Kind.INT].size

    @property
    def align(self) -> int:
        return PRIMITIVES[Kind.INT].align

    def name(self) -> str:
        return f"enum {self.tag}" if self.tag else "enum <anonymous>"

    def name_of(self, value: int) -> Optional[str]:
        """Reverse lookup: the first enumerator with this value, if any."""
        for enum_name, enum_value in self.enumerators.items():
            if enum_value == value:
                return enum_name
        return None


@dataclass(frozen=True)
class FunctionType(CType):
    """Function type: return type + parameter types (+ varargs flag)."""

    result: CType
    params: tuple[CType, ...] = ()
    varargs: bool = False
    kind: Kind = field(default=Kind.FUNCTION, init=False)

    @property
    def is_function(self) -> bool:
        return True

    @property
    def size(self) -> int:
        raise TypeError("sizeof function type")

    @property
    def align(self) -> int:
        raise TypeError("alignof function type")

    def name(self) -> str:
        params = ", ".join(p.name() for p in self.params) or "void"
        if self.varargs:
            params += ", ..."
        return f"{self.result.name()} ({params})"


class TypedefType(CType):
    """A named alias for another type."""

    kind = Kind.TYPEDEF

    def __init__(self, alias: str, target: CType):
        self.alias = alias
        self.target = target

    def strip_typedefs(self) -> CType:
        return self.target.strip_typedefs()

    def __getattr__(self, item):  # delegate classification/layout queries
        return getattr(self.target, item)

    @property
    def is_integer(self) -> bool:
        return self.target.is_integer

    @property
    def is_float(self) -> bool:
        return self.target.is_float

    @property
    def is_pointer(self) -> bool:
        return self.target.is_pointer

    @property
    def is_array(self) -> bool:
        return self.target.is_array

    @property
    def is_record(self) -> bool:
        return self.target.is_record

    @property
    def is_function(self) -> bool:
        return self.target.is_function

    @property
    def is_void(self) -> bool:
        return self.target.is_void

    @property
    def size(self) -> int:
        return self.target.size

    @property
    def align(self) -> int:
        return self.target.align

    def name(self) -> str:
        return self.alias

    def __repr__(self) -> str:
        return f"<TypedefType {self.alias!r} -> {self.target.name()!r}>"


@dataclass(frozen=True)
class BitFieldType(CType):
    """The type of a loaded bit-field value: base integer + width."""

    base: CType
    width: int
    kind: Kind = field(default=Kind.BITFIELD, init=False)

    @property
    def is_integer(self) -> bool:
        return True

    @property
    def signed(self) -> bool:
        return getattr(self.base.strip_typedefs(), "signed", True)

    @property
    def rank(self) -> int:
        return getattr(self.base.strip_typedefs(), "rank", PRIMITIVES[Kind.INT].rank)

    @property
    def size(self) -> int:
        return self.base.size

    @property
    def align(self) -> int:
        return self.base.align

    def name(self) -> str:
        return f"{self.base.name()} : {self.width}"


def pointer_to(target: CType) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(target)


def array_of(element: CType, length: Optional[int]) -> ArrayType:
    """Convenience constructor for array types."""
    return ArrayType(element, length)


#: char *, used pervasively (strings).
CHAR_P = PointerType(CHAR)
#: void *, the generic object pointer.
VOID_P = PointerType(VOID)

assert BYTE_ORDER == "little"
