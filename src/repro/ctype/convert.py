"""C conversion rules: integer promotions, usual arithmetic
conversions, and explicit casts, over the CType model.

These are the rules DUEL's ``apply`` uses before every binary operator
(paper: DUEL "contains ... its own implementation of the C operators").
"""

from __future__ import annotations

from repro.ctype.kinds import Kind, PRIMITIVES, UNSIGNED_OF, wrap_int
from repro.ctype.types import (
    BitFieldType,
    CType,
    EnumType,
    INT,
    UINT,
    PointerType,
    PrimitiveType,
    DOUBLE,
)


class ConversionError(TypeError):
    """Raised when a conversion between C types is ill-formed."""


def _as_primitive(t: CType) -> PrimitiveType:
    s = t.strip_typedefs()
    if isinstance(s, EnumType):
        return INT
    if isinstance(s, BitFieldType):
        base = s.base.strip_typedefs()
        if isinstance(base, PrimitiveType):
            return base
        return INT
    if isinstance(s, PrimitiveType):
        return s
    raise ConversionError(f"{t} is not an arithmetic type")


def integer_promote(t: CType) -> CType:
    """C integer promotion: sub-int integers promote to int."""
    p = _as_primitive(t)
    if p.is_float:
        return p
    if p.rank < PRIMITIVES[Kind.INT].rank:
        return INT
    if isinstance(t.strip_typedefs(), (EnumType, BitFieldType)):
        return INT
    return p


def usual_arithmetic_conversions(a: CType, b: CType) -> CType:
    """The common type of two arithmetic operands (C11 6.3.1.8)."""
    pa = _as_primitive(a)
    pb = _as_primitive(b)
    if pa.is_float or pb.is_float:
        # Highest-ranked float wins (float < double < long double).
        if not pa.is_float:
            return pb
        if not pb.is_float:
            return pa
        return pa if pa.rank >= pb.rank else pb
    qa = integer_promote(pa)
    qb = integer_promote(pb)
    assert isinstance(qa, PrimitiveType) and isinstance(qb, PrimitiveType)
    if qa.kind == qb.kind:
        return qa
    if qa.signed == qb.signed:
        return qa if qa.rank > qb.rank else qb
    unsigned, signed = (qa, qb) if not qa.signed else (qb, qa)
    if unsigned.rank >= signed.rank:
        return unsigned
    if signed.size > unsigned.size:
        return signed
    # Signed type cannot represent all unsigned values: use the
    # unsigned counterpart of the signed type.
    counterpart = UNSIGNED_OF.get(signed.kind)
    if counterpart is None:
        raise ConversionError(f"no unsigned counterpart for {signed}")
    return PrimitiveType(counterpart)


def convert_value(value, src: CType, dst: CType):
    """Convert a raw Python value from type ``src`` to type ``dst``.

    Models C's value-changing conversions: float<->int truncation,
    integer narrowing by two's-complement wrap, pointer<->integer
    reinterpretation.
    """
    s = src.strip_typedefs()
    d = dst.strip_typedefs()
    if d.is_void:
        return None
    if isinstance(d, PointerType):
        if isinstance(s, PointerType) or s.is_integer or s.is_function:
            # Function designators decay to their entry address.
            return int(value) & ((1 << (d.size * 8)) - 1)
        raise ConversionError(f"cannot convert {src} to {dst}")
    if isinstance(d, EnumType):
        return wrap_int(int(value), Kind.INT)
    pd = _as_primitive(d)
    if pd.is_float:
        return float(value)
    # Integer destination.
    if isinstance(s, PointerType):
        return wrap_int(int(value), pd.kind)
    if not s.is_arithmetic and not isinstance(s, (EnumType, BitFieldType)):
        raise ConversionError(f"cannot convert {src} to {dst}")
    if pd.kind is Kind.BOOL:
        return 1 if value else 0
    return wrap_int(int(value), pd.kind)


def common_pointer_type(a: CType, b: CType) -> CType:
    """The type used when comparing/subtracting two pointers."""
    sa, sb = a.strip_typedefs(), b.strip_typedefs()
    if not (isinstance(sa, PointerType) and isinstance(sb, PointerType)):
        raise ConversionError("common_pointer_type on non-pointers")
    if sa.target.is_void:
        return sb
    return sa


def is_null_constant(value, ctype: CType) -> bool:
    """True for the integer constant 0 used in pointer contexts."""
    return ctype.strip_typedefs().is_integer and int(value) == 0


__all__ = [
    "ConversionError",
    "integer_promote",
    "usual_arithmetic_conversions",
    "convert_value",
    "common_pointer_type",
    "is_null_constant",
    "DOUBLE",
    "UINT",
]
