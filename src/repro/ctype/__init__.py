"""C type system substrate.

DUEL keeps its own representation of C types and values (the paper's
implementation "contains its own type and value representations and its
own implementation of the C operators").  This package provides that
representation: a :class:`~repro.ctype.types.CType` hierarchy covering
primitives, pointers, arrays, structs, unions, enums, bitfields,
typedefs and function types, together with layout rules
(:mod:`~repro.ctype.layout`), the usual arithmetic conversions
(:mod:`~repro.ctype.convert`), byte-level codecs
(:mod:`~repro.ctype.encode`) and a parser for C declaration syntax
(:mod:`~repro.ctype.declparse`).

The data model follows an LP64, little-endian target (the SUN/DEC
workstations of the paper were ILP32 big/little-endian; the layout
engine is parameterised so either can be configured).
"""

from repro.ctype.kinds import Kind, PRIMITIVES
from repro.ctype.types import (
    ArrayType,
    BitFieldType,
    CType,
    EnumType,
    FunctionType,
    PointerType,
    PrimitiveType,
    StructType,
    TypedefType,
    UnionType,
    Field,
    CHAR,
    SCHAR,
    UCHAR,
    SHORT,
    USHORT,
    INT,
    UINT,
    LONG,
    ULONG,
    LLONG,
    ULLONG,
    FLOAT,
    DOUBLE,
    LDOUBLE,
    VOID,
    BOOL,
    pointer_to,
    array_of,
)
from repro.ctype.declparse import DeclParser, DeclError, parse_type
from repro.ctype.convert import (
    usual_arithmetic_conversions,
    integer_promote,
    convert_value,
    ConversionError,
)
from repro.ctype.encode import encode_value, decode_value, EncodeError

__all__ = [
    "Kind",
    "PRIMITIVES",
    "CType",
    "PrimitiveType",
    "PointerType",
    "ArrayType",
    "StructType",
    "UnionType",
    "EnumType",
    "FunctionType",
    "TypedefType",
    "BitFieldType",
    "Field",
    "CHAR",
    "SCHAR",
    "UCHAR",
    "SHORT",
    "USHORT",
    "INT",
    "UINT",
    "LONG",
    "ULONG",
    "LLONG",
    "ULLONG",
    "FLOAT",
    "DOUBLE",
    "LDOUBLE",
    "VOID",
    "BOOL",
    "pointer_to",
    "array_of",
    "DeclParser",
    "DeclError",
    "parse_type",
    "usual_arithmetic_conversions",
    "integer_promote",
    "convert_value",
    "ConversionError",
    "encode_value",
    "decode_value",
    "EncodeError",
]
