"""``python -m repro`` — the DUEL command-line front end."""

from repro.cli import main

raise SystemExit(main())
