"""Command-line front end: run a mini-C program, then explore it with
``duel`` commands — the closest offline equivalent of the paper's
gdb session.

Usage::

    python -m repro program.c [-- arg1 arg2 ...]
    python -m repro --expr 'x[..100] >? 0' program.c
    python -m repro            # no program: a bare DUEL calculator

Inside the REPL::

    duel> hash[..64] !=? 0
    duel> save deep hash[..64]-->next->scope >? 5
    duel> !deep
    duel> help
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import DuelError
from repro.minic import run_program
from repro.minic.errors import MiniCError
from repro.target.stdlib import install_stdlib, stdout_text

PROMPT = "duel> "

HELP = """\
DUEL REPL commands:
  <expression>          evaluate a DUEL expression and print its values
  help                  this text
  aliases               list debugger aliases (x := ...)
  clear                 drop all aliases
  symbolic on|off       toggle symbolic derivations in output
  history               show executed queries
  save <name> <expr>    name a query for re-issue
  !<name>               re-issue a saved query
  quit / EOF            leave
Anything else is handed to DUEL; see README.md for the language."""


def build_target(source_path: Optional[str],
                 argv: Sequence[str], out) -> TargetProgram:
    """Run the program (if given) and return the stopped inferior."""
    if source_path is None:
        program = TargetProgram()
        install_stdlib(program)
        return program
    with open(source_path) as handle:
        source = handle.read()
    interp = run_program(source, argv=[source_path, *argv])
    text = stdout_text(interp.program)
    if text:
        out.write(text)
        if not text.endswith("\n"):
            out.write("\n")
    if interp.exit_status is not None:
        out.write(f"[program exited with status {interp.exit_status}]\n")
    return interp.program


def repl(session: DuelSession, stdin=None, out=None) -> int:
    """Interactive loop; returns an exit status."""
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        if line in ("quit", "exit", "q"):
            break
        if line == "help":
            out.write(HELP + "\n")
            continue
        if line == "aliases":
            aliases = session.aliases()
            if not aliases:
                out.write("(no aliases)\n")
            for name, value in aliases.items():
                out.write(f"{name} := {session.formatter.format(value)}\n")
            continue
        if line == "clear":
            session.clear_aliases()
            continue
        if line.startswith("symbolic"):
            mode = line.split()[-1]
            session.options.symbolic = (mode != "off")
            out.write(f"symbolic {'on' if session.options.symbolic else 'off'}\n")
            continue
        if line == "history":
            for index, text in enumerate(session.history):
                out.write(f"{index:3}  {text}\n")
            continue
        if line.startswith("save "):
            parts = line.split(None, 2)
            if len(parts) < 3:
                out.write("usage: save <name> <expression>\n")
                continue
            try:
                session.save_query(parts[1], parts[2])
                out.write(f"saved {parts[1]!r}\n")
            except DuelError as error:
                out.write(str(error) + "\n")
            continue
        if line.startswith("!"):
            name = line[1:].strip()
            if name not in session.saved:
                out.write(f"no saved query named {name!r}\n")
                continue
            run_command(session, session.saved[name], out)
            continue
        run_command(session, line, out)
    return 0


def run_command(session: DuelSession, text: str, out) -> None:
    """One duel command: print all values, or the error, never raise.

    Routed through the session's recovering drive, so values produced
    before a mid-query error still appear, and failed side-effecting
    queries roll the target back.
    """
    sink = _CountingOut(out)
    session.duel(text, out=sink)
    if not sink.wrote:
        out.write("(no values)\n")


class _CountingOut:
    """Write-through stream that remembers whether anything was printed."""

    def __init__(self, inner):
        self.inner = inner
        self.wrote = False

    def write(self, text: str) -> None:
        self.wrote = True
        self.inner.write(text)


def main(argv: Optional[Sequence[str]] = None,
         stdin=None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DUEL (USENIX '93) over a simulated inferior")
    parser.add_argument("source", nargs="?",
                        help="mini-C program to run, then debug")
    parser.add_argument("--expr", "-e", action="append", default=[],
                        help="evaluate this DUEL expression and exit "
                             "(repeatable)")
    parser.add_argument("--no-symbolic", action="store_true",
                        help="print values without derivations")
    parser.add_argument("--optimize", action="store_true",
                        help="enable compile-time constant folding")
    parser.add_argument("args", nargs="*", default=[],
                        help="argv for the target program (after --)")
    ns = parser.parse_args(argv)

    try:
        program = build_target(ns.source, ns.args, out)
    except (MiniCError, OSError) as error:
        out.write(f"error: {error}\n")
        return 1
    session = DuelSession(SimulatorBackend(program),
                          symbolic=not ns.no_symbolic,
                          optimize=ns.optimize)
    if ns.expr:
        for text in ns.expr:
            out.write(f"duel {text}\n")
            run_command(session, text, out)
        return 0
    if stdin is None and sys.stdin.isatty():  # pragma: no cover
        out.write("DUEL reproduction; 'help' for commands, 'quit' to exit\n")
    return repl(session, stdin=stdin, out=out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
