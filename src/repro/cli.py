"""Command-line front end: run a mini-C program, then explore it with
``duel`` commands — the closest offline equivalent of the paper's
gdb session.

Usage::

    python -m repro program.c [-- arg1 arg2 ...]
    python -m repro --expr 'x[..100] >? 0' program.c
    python -m repro            # no program: a bare DUEL calculator

Inside the REPL::

    duel> hash[..64] !=? 0
    duel> save deep hash[..64]-->next->scope >? 5
    duel> !deep
    duel> help
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Optional, Sequence

from repro import DuelSession, SimulatorBackend, TargetProgram
from repro.core.errors import DuelError
from repro.core.governor import CancelToken
from repro.minic import run_program
from repro.minic.errors import MiniCError
from repro.target.stdlib import install_stdlib, stdout_text

PROMPT = "duel> "

HELP = """\
DUEL REPL commands:
  <expression>          evaluate a DUEL expression and print its values
  help                  this text
  aliases               list debugger aliases (x := ...)
  clear                 drop all aliases
  symbolic on|off       toggle symbolic derivations in output
  limits [<name> <n>]   show / set per-query limits (n=off disables)
  stats on|off          print a [steps=.., reads=.., wall=..ms] footer
  explain <expr>        run traced; print the per-node profile tree
  trace <expr>          same as explain
  accesses <expr>       run with the memory-access tracer; print the
                        stride/locality profile and prefetch advice
  cache                 page-cache statistics (--page-cache demand|adaptive)
  trace on|off          trace every query (events kept in a ring buffer)
  qlog on|off           toggle the structured query log (--query-log)
  metrics [export]      metrics registry table, or Prometheus text format
  statements [by KEY]   per-query-shape statistics (total_ms, calls, ...)
  dump [DIR]            write a flight-recorder post-mortem (--dump-dir)
  history               show executed queries
  save <name> <expr>    name a query for re-issue
  !<name>               re-issue a saved query
  quit / EOF            leave
^C stops a running query; its partial values are kept.
Anything else is handed to DUEL; see README.md for the language."""


def sigint_handler(token: CancelToken):
    """The REPL's ^C handler: trip the cooperative cancel token.

    The governor notices at its next checkpoint, the drive loop stops,
    partial results stand, and a ``(stopped: ... interrupted)`` line is
    printed — the paper's "output can be stopped with the standard gdb
    ^C interrupt", without killing the session.
    """
    def handle(signum, frame):
        token.trip("interrupt")
    return handle


def build_target(source_path: Optional[str],
                 argv: Sequence[str], out) -> TargetProgram:
    """Run the program (if given) and return the stopped inferior."""
    if source_path is None:
        program = TargetProgram()
        install_stdlib(program)
        return program
    with open(source_path) as handle:
        source = handle.read()
    interp = run_program(source, argv=[source_path, *argv])
    text = stdout_text(interp.program)
    if text:
        out.write(text)
        if not text.endswith("\n"):
            out.write("\n")
    if interp.exit_status is not None:
        out.write(f"[program exited with status {interp.exit_status}]\n")
    return interp.program


def repl(session: DuelSession, stdin=None, out=None) -> int:
    """Interactive loop; returns an exit status.

    Installs a SIGINT handler for its lifetime (when running on the
    main thread) so ^C trips the session's cancel token instead of
    raising KeyboardInterrupt through a half-driven query.
    """
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    stats = False
    try:
        previous = signal.signal(signal.SIGINT,
                                 sigint_handler(session.governor.token))
    except ValueError:          # not the main thread: no handler swap
        previous = None
    try:
        for raw in stdin:
            line = raw.strip()
            if not line:
                continue
            if line in ("quit", "exit", "q"):
                break
            if line == "help":
                out.write(HELP + "\n")
                continue
            if line == "aliases":
                aliases = session.aliases()
                if not aliases:
                    out.write("(no aliases)\n")
                for name, value in aliases.items():
                    out.write(f"{name} := "
                              f"{session.formatter.format(value)}\n")
                continue
            if line == "clear":
                session.clear_aliases()
                continue
            if line.split()[0] == "symbolic":
                parts = line.split()
                if len(parts) == 2 and parts[1] in ("on", "off"):
                    session.options.symbolic = (parts[1] == "on")
                    out.write(f"symbolic {parts[1]}\n")
                else:
                    out.write("usage: symbolic on|off\n")
                continue
            if line.split()[0] == "stats":
                parts = line.split()
                if len(parts) == 2 and parts[1] in ("on", "off"):
                    stats = (parts[1] == "on")
                    out.write(f"stats {parts[1]}\n")
                else:
                    out.write("usage: stats on|off\n")
                continue
            if line.split()[0] == "limits":
                _limits_command(session, line, out)
                continue
            if line.split()[0] == "trace":
                _trace_command(session, line, out)
                continue
            if line.split()[0] == "explain":
                parts = line.split(None, 1)
                if len(parts) == 2:
                    session.explain(parts[1], out=out)
                else:
                    out.write("usage: explain <expression>\n")
                continue
            if line.split()[0] == "accesses":
                _accesses_command(session, line, out)
                continue
            if line.split()[0] == "cache":
                _cache_command(session, line, out)
                continue
            if line.split()[0] == "qlog":
                _qlog_command(session, line, out)
                continue
            if line.split()[0] == "metrics":
                _metrics_command(session, line, out)
                continue
            if line.split()[0] == "statements":
                _statements_command(session, line, out)
                continue
            if line.split()[0] == "dump":
                _dump_command(session, line, out)
                continue
            if line == "history":
                for index, text in enumerate(session.history):
                    out.write(f"{index:3}  {text}\n")
                continue
            if line.startswith("save "):
                parts = line.split(None, 2)
                if len(parts) < 3:
                    out.write("usage: save <name> <expression>\n")
                    continue
                try:
                    session.save_query(parts[1], parts[2])
                    out.write(f"saved {parts[1]!r}\n")
                except DuelError as error:
                    out.write(str(error) + "\n")
                continue
            if line.startswith("!"):
                name = line[1:].strip()
                if name not in session.saved:
                    out.write(f"no saved query named {name!r}\n")
                    continue
                run_command(session, session.saved[name], out, stats=stats)
                continue
            run_command(session, line, out, stats=stats)
    finally:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)
    return 0


def _limits_command(session: DuelSession, line: str, out) -> None:
    """``limits`` / ``limits show`` / ``limits <name> <value|off>``."""
    governor = session.governor
    parts = line.split()
    if len(parts) == 1 or (len(parts) == 2 and parts[1] == "show"):
        for row in governor.describe():
            out.write(row + "\n")
        return
    if len(parts) == 3:
        name, raw = parts[1], parts[2]
        try:
            value = None if raw.lower() in ("off", "none") else int(raw)
        except ValueError:
            out.write("usage: limits [show|<name> <value|off>]\n")
            return
        try:
            governor.set_limit(name, value)
        except ValueError as error:
            out.write(str(error) + "\n")
            return
        shown = governor.limits[name]
        out.write(f"limits {name} {'off' if shown is None else shown}\n")
        return
    out.write("usage: limits [show|<name> <value|off>]\n")


def _qlog_command(session: DuelSession, line: str, out) -> None:
    """``qlog on|off`` — strict, like ``trace on|off``.

    Only the exact words ``on``/``off`` flip the mode; ``off`` stashes
    the attached :class:`~repro.obs.qlog.QueryLog` so the session's
    per-query gate stays a single ``is not None`` predicate, and ``on``
    restores it.  Without a configured log (``--query-log FILE``)
    there is nothing to enable, and the command says so.
    """
    parts = line.split()
    if len(parts) != 2 or parts[1] not in ("on", "off"):
        out.write("usage: qlog on|off\n")
        return
    stashed = getattr(session, "_qlog_stashed", None)
    if parts[1] == "on":
        if session.qlog is None:
            if stashed is None:
                out.write("no query log attached "
                          "(start with --query-log FILE)\n")
                return
            session.qlog = stashed
            session._qlog_stashed = None
        out.write("qlog on\n")
    else:
        if session.qlog is not None:
            session._qlog_stashed = session.qlog
            session.qlog = None
        out.write("qlog off\n")


def _metrics_command(session: DuelSession, line: str, out) -> None:
    """``metrics`` (sorted table) or ``metrics export`` (Prometheus)."""
    parts = line.split()
    if len(parts) == 1:
        rows = session.metrics.describe()
        if not rows:
            out.write("(no metrics recorded)\n")
        for row in rows:
            out.write(row + "\n")
        return
    if len(parts) == 2 and parts[1] == "export":
        from repro.obs.exposition import render_prometheus
        out.write(render_prometheus(session.metrics))
        return
    out.write("usage: metrics [export]\n")


def _statements_command(session: DuelSession, line: str, out) -> None:
    """``statements`` / ``statements by <key>`` — per-shape stats.

    Renders the session's :class:`~repro.obs.statements.StatementStats`
    table: one row per normalized query shape (literals bucketed,
    names canonicalized) with call counts and phase latencies — the
    REPL-local view of what ``duel-serve`` exposes fleet-wide.
    """
    from repro.obs.statements import ORDERINGS, describe
    stats = session.statements
    if stats is None:
        out.write("no statement statistics attached\n")
        return
    parts = line.split()
    by = "total_ms"
    if len(parts) == 3 and parts[1] == "by":
        by = parts[2]
    elif len(parts) != 1:
        out.write(f"usage: statements [by {'|'.join(ORDERINGS)}]\n")
        return
    if by not in ORDERINGS:
        out.write(f"usage: statements [by {'|'.join(ORDERINGS)}]\n")
        return
    for row in describe(stats.snapshot(by=by), stats.state()):
        out.write(row + "\n")


def _accesses_command(session: DuelSession, line: str, out) -> None:
    """``accesses <expr>`` — the query's memory-access profile.

    Runs the expression with the access tracer forced on (values are
    produced but not printed) and renders the locality report: access
    and byte counts, scan-pattern classification, stride histogram,
    page locality, and the prefetch advisor's page-cache sweep.
    """
    parts = line.split(None, 1)
    if len(parts) != 2:
        out.write("usage: accesses <expression>\n")
        return
    from repro.obs.access import render_report
    result = session.accesses(parts[1])
    profile = result.get("access")
    if profile is None:
        out.write((result.get("error") or result.get("diagnostic")
                   or f"({result['outcome']}: no accesses recorded)")
                  + "\n")
        return
    for row in render_report(parts[1], profile,
                             result.get("advisor") or [],
                             cache=result.get("cache")):
        out.write(row + "\n")
    if result["outcome"] != "done":
        extra = result.get("diagnostic") or result.get("error")
        if extra:
            out.write(extra + "\n")


def _cache_command(session: DuelSession, line: str, out) -> None:
    """``cache`` — the page cache's live counters and policy.

    Shows the :class:`~repro.target.pagecache.PageCachingBackend`
    statistics accumulated since startup: hit rate, logical vs.
    physical traffic, prefetch volume, the current scan-pattern
    classification, and residency.  With the cache off (the default)
    it says how to turn it on.
    """
    if len(line.split()) != 1:
        out.write("usage: cache\n")
        return
    cache = getattr(session.evaluator, "page_cache", None)
    if cache is None:
        out.write("page cache off "
                  "(start with --page-cache demand|adaptive)\n")
        return
    stats = cache.stats()
    out.write(f"page cache: {stats['mode']}, {stats['page_size']}B x "
              f"{stats['capacity']} pages "
              f"({stats['resident_pages']} resident)\n")
    out.write(f"  {stats['cache_hits']} hits / "
              f"{stats['cache_misses']} misses "
              f"({stats['hit_rate'] * 100:.1f}%), "
              f"{stats['cache_evictions']} evictions, "
              f"{stats['cache_flushes']} epoch flushes\n")
    out.write(f"  physical: {stats['physical_reads']} reads, "
              f"{stats['physical_bytes']}B; prefetched "
              f"{stats['prefetched_pages']} pages / "
              f"{stats['prefetched_bytes']}B "
              f"({stats['prefetch_hits']} used)\n")
    out.write(f"  pattern: {stats['pattern']} "
              f"(stride {stats['stride']}), epoch {stats['epoch']}\n")


def _dump_command(session: DuelSession, line: str, out) -> None:
    """``dump [DIR]`` — write a post-mortem from the flight recorder."""
    parts = line.split()
    if len(parts) > 2:
        out.write("usage: dump [directory]\n")
        return
    if session.recorder is None:
        out.write("no flight recorder (start with --dump-dir DIR)\n")
        return
    directory = parts[1] if len(parts) == 2 else None
    try:
        path = session.recorder.dump("manual dump",
                                     metrics=session.metrics,
                                     governor=session.governor,
                                     dump_dir=directory)
    except (ValueError, OSError) as error:
        out.write(f"dump failed: {error}\n")
        return
    out.write(f"dumped {path}\n")


def _trace_command(session: DuelSession, line: str, out) -> None:
    """``trace on|off`` (strict, like ``symbolic``) or ``trace <expr>``.

    Only the exact words ``on``/``off`` flip the mode — anything else
    is an expression to explain, so a typo like ``trace onn`` can
    never silently toggle tracing.
    """
    parts = line.split(None, 1)
    if len(parts) == 1:
        out.write("usage: trace on|off | trace <expression>\n")
        return
    argument = parts[1].strip()
    if argument in ("on", "off"):
        session.tracing = (argument == "on")
        out.write(f"trace {argument}\n")
        return
    session.explain(argument, out=out)


def run_command(session: DuelSession, text: str, out,
                stats: bool = False) -> None:
    """One duel command: print all values, or the error, never raise.

    Routed through the session's recovering drive, so values produced
    before a mid-query error still appear, failed side-effecting
    queries roll the target back, and truncated queries keep their
    partial output.  With ``stats`` on, a per-query resource footer
    follows the output.
    """
    sink = _CountingOut(out)
    lookups_before = session.lookup_count
    session.duel(text, out=sink)
    if not sink.wrote:
        out.write("(no values)\n")
    if stats:
        governor = session.governor
        lookups = session.lookup_count - lookups_before
        traffic = session.last_query_stats
        out.write(f"[steps={governor.steps}, lookups={lookups}, "
                  f"reads={traffic.get('reads', 0)}, "
                  f"writes={traffic.get('writes', 0)}, "
                  f"calls={traffic.get('calls', 0)}, "
                  f"wall={governor.elapsed_ms():.1f}ms]\n")


class _CountingOut:
    """Write-through stream that remembers whether anything was printed."""

    def __init__(self, inner):
        self.inner = inner
        self.wrote = False

    def write(self, text: str) -> None:
        self.wrote = True
        self.inner.write(text)


def main(argv: Optional[Sequence[str]] = None,
         stdin=None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DUEL (USENIX '93) over a simulated inferior")
    parser.add_argument("source", nargs="?",
                        help="mini-C program to run, then debug")
    parser.add_argument("--expr", "-e", action="append", default=[],
                        help="evaluate this DUEL expression and exit "
                             "(repeatable)")
    parser.add_argument("--no-symbolic", action="store_true",
                        help="print values without derivations")
    parser.add_argument("--optimize", action="store_true",
                        help="enable compile-time constant folding")
    parser.add_argument("--max-steps", type=int, default=None,
                        metavar="N",
                        help="per-query generator-step budget "
                             "(0 disables; default 10000000)")
    parser.add_argument("--deadline-ms", type=int, default=None,
                        metavar="MS",
                        help="per-query wall-clock deadline in ms "
                             "(0 disables; default 30000)")
    parser.add_argument("--max-lines", type=int, default=None,
                        metavar="N",
                        help="per-query output quota in printed values "
                             "(0 disables; default 10000)")
    parser.add_argument("--trace-json", metavar="FILE", default=None,
                        help="trace every query, writing JSONL events "
                             "and per-node spans to FILE")
    parser.add_argument("--query-log", metavar="FILE", default=None,
                        help="write one JSONL lifecycle record per "
                             "query (received/parsed/terminal) to FILE")
    parser.add_argument("--page-cache", default="off",
                        choices=("off", "demand", "adaptive"),
                        metavar="MODE",
                        help="page-granular target read cache: 'off' "
                             "(default; reads pass straight through), "
                             "'demand' (cache pages as they are "
                             "touched), or 'adaptive' (also prefetch "
                             "ahead of sequential/strided scans)")
    parser.add_argument("--page-size", type=int, default=None,
                        metavar="BYTES",
                        help="cache page size in bytes, a power of "
                             "two >= 8 (default 256)")
    parser.add_argument("--page-cache-pages", type=int, default=None,
                        metavar="N",
                        help="cache capacity in pages (default 64)")
    parser.add_argument("--access-trace", metavar="FILE", default=None,
                        help="profile sampled queries' target memory "
                             "accesses (strides, page locality, scan "
                             "pattern) and write one JSONL record per "
                             "profiled query to FILE")
    parser.add_argument("--access-sample", type=int, default=1,
                        metavar="N",
                        help="profile 1-in-N queries for "
                             "--access-trace ('accesses' and the wire "
                             "accesses op always profile; default 1 = "
                             "every query)")
    parser.add_argument("--dump-dir", metavar="DIR", default=None,
                        help="enable the flight recorder; write "
                             "post-mortem JSON dumps into DIR on "
                             "faults, ^C, truncations, or 'dump'")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve Prometheus metrics on "
                             "127.0.0.1:PORT/metrics (0 picks a free "
                             "port)")
    serve_group = parser.add_argument_group(
        "query service", "serve DUEL queries over TCP (duel-serve)")
    serve_group.add_argument("--serve", action="store_true",
                             help="run the concurrent query service "
                                  "instead of the REPL")
    serve_group.add_argument("--host", default="127.0.0.1",
                             help="service bind address "
                                  "(default 127.0.0.1)")
    serve_group.add_argument("--port", type=int, default=0,
                             metavar="PORT",
                             help="service port (0 picks a free port, "
                                  "printed on startup)")
    serve_group.add_argument("--workers", type=int, default=4,
                             metavar="N",
                             help="query worker threads (default 4)")
    serve_group.add_argument("--queue-depth", type=int, default=16,
                             metavar="N",
                             help="admitted-query queue bound; beyond "
                                  "it queries get 'rejected: "
                                  "overloaded' (default 16)")
    serve_group.add_argument("--max-clients", type=int, default=32,
                             metavar="N",
                             help="concurrent connection cap "
                                  "(default 32)")
    serve_group.add_argument("--per-client", type=int, default=1,
                             metavar="N",
                             help="in-flight queries allowed per "
                                  "client (default 1)")
    serve_group.add_argument("--drain-timeout", type=float, default=10.0,
                             metavar="SECONDS",
                             help="shutdown drain budget before "
                                  "in-flight queries are cancelled "
                                  "(default 10)")
    serve_group.add_argument("--heartbeat-interval", type=float,
                             default=10.0, metavar="SECONDS",
                             help="ping connections idle this long; "
                                  "0 disables heartbeats (default 10)")
    serve_group.add_argument("--heartbeat-timeout", type=float,
                             default=30.0, metavar="SECONDS",
                             help="reap connections silent this long "
                                  "after a ping (default 30)")
    serve_group.add_argument("--resume-ttl", type=float, default=60.0,
                             metavar="SECONDS",
                             help="how long an abnormally disconnected "
                                  "session stays resumable; 0 disables "
                                  "parking (default 60)")
    serve_group.add_argument("--breaker-threshold", type=int, default=5,
                             metavar="N",
                             help="target faults within the window "
                                  "that trip degraded mode (default 5)")
    serve_group.add_argument("--breaker-window", type=float, default=30.0,
                             metavar="SECONDS",
                             help="sliding fault window feeding the "
                                  "circuit breaker (default 30)")
    serve_group.add_argument("--breaker-cooldown", type=float,
                             default=10.0, metavar="SECONDS",
                             help="how long writes stay rejected "
                                  "before a half-open probe "
                                  "(default 10)")
    serve_group.add_argument("--state-dir", metavar="DIR", default=None,
                             help="crash-only durability: journal "
                                  "session state and committed writes "
                                  "to DIR and checkpoint the target, "
                                  "so a restart with the same DIR "
                                  "recovers parked sessions and "
                                  "replays writes")
    serve_group.add_argument("--journal-fsync", metavar="POLICY",
                             default="interval:1.0",
                             help="journal fsync policy: 'always', "
                                  "'interval:N' (seconds), or 'off' "
                                  "(default interval:1.0; any flushed "
                                  "record survives SIGKILL — fsync "
                                  "only buys power-loss durability)")
    serve_group.add_argument("--checkpoint-interval", type=float,
                             default=30.0, metavar="SECONDS",
                             help="how often the checkpointer freezes "
                                  "the target and writes a durable "
                                  "snapshot, truncating old journal "
                                  "segments; 0 disables periodic "
                                  "checkpoints (default 30)")
    serve_group.add_argument("--commit-writes", action="store_true",
                             help="side-effecting queries that drain "
                                  "to 'done' keep their effects on "
                                  "the shared target (journaled and "
                                  "replayed on recovery) instead of "
                                  "being rolled back")
    serve_group.add_argument("--trace-sample", type=int, default=1,
                             metavar="N",
                             help="export 1-in-N request traces to "
                                  "--trace-json (truncated, faulted, "
                                  "cancelled and slow queries always "
                                  "export; default 1 = every query)")
    serve_group.add_argument("--slow-ms", type=float, default=None,
                             metavar="MS",
                             help="queries slower than MS total are "
                                  "logged as slow_query events, pinned "
                                  "in the flight recorder, and always "
                                  "trace-exported")
    serve_group.add_argument("--query-log-fsync", action="store_true",
                             help="fsync the --query-log on every "
                                  "terminal record, making the audit "
                                  "log durable across power loss, "
                                  "not just process death")
    parser.add_argument("args", nargs="*", default=[],
                        help="argv for the target program (after --)")
    ns = parser.parse_args(argv)

    try:
        program = build_target(ns.source, ns.args, out)
    except (MiniCError, OSError) as error:
        out.write(f"error: {error}\n")
        return 1
    limit_kwargs = {}
    if ns.max_steps is not None:
        limit_kwargs["max_steps"] = ns.max_steps
    if ns.deadline_ms is not None:
        limit_kwargs["deadline_ms"] = ns.deadline_ms
    if ns.max_lines is not None:
        limit_kwargs["max_lines"] = ns.max_lines
    from repro.target.pagecache import parse_policy
    cache_kwargs = {}
    if ns.page_size is not None:
        cache_kwargs["page_size"] = ns.page_size
    if ns.page_cache_pages is not None:
        cache_kwargs["capacity"] = ns.page_cache_pages
    try:
        page_cache = None if ns.page_cache == "off" \
            else parse_policy(ns.page_cache, **cache_kwargs)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 1
    ns.page_cache_policy = page_cache
    if ns.serve:
        from repro.serve.server import run_server
        return run_server(ns, program, limit_kwargs, out)
    session = DuelSession(SimulatorBackend(program),
                          symbolic=not ns.no_symbolic,
                          optimize=ns.optimize,
                          page_cache=page_cache, **limit_kwargs)
    from repro.obs.statements import StatementStats
    session.statements = StatementStats()
    sink = None
    if ns.trace_json:
        from repro.obs.trace import JsonlSink
        try:
            sink = JsonlSink(ns.trace_json)
        except OSError as error:
            out.write(f"error: {error}\n")
            return 1
        session.trace_sink = sink
        session.tracing = True
    qlog = None
    if ns.query_log:
        from repro.obs.qlog import QueryLog
        try:
            qlog = QueryLog(ns.query_log)
        except OSError as error:
            out.write(f"error: {error}\n")
            return 1
        session.qlog = qlog
    accesslog = None
    if ns.access_trace:
        from repro.obs.access import AccessLog
        try:
            accesslog = AccessLog(ns.access_trace,
                                  sample=ns.access_sample)
        except (OSError, ValueError) as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            return 1
        session.accesslog = accesslog
    if ns.dump_dir:
        from repro.obs.recorder import FlightRecorder
        try:
            import os
            os.makedirs(ns.dump_dir, exist_ok=True)
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            if accesslog is not None:
                accesslog.close()
            return 1
        session.recorder = FlightRecorder(dump_dir=ns.dump_dir)
    server = None
    if ns.metrics_port is not None:
        from repro.obs.exposition import MetricsServer
        server = MetricsServer(session.metrics, port=ns.metrics_port)
        try:
            port = server.start()
        except OSError as error:
            out.write(f"error: {error}\n")
            if qlog is not None:
                qlog.close()
            if accesslog is not None:
                accesslog.close()
            return 1
        out.write(f"metrics: http://127.0.0.1:{port}/metrics\n")
    try:
        if ns.expr:
            for text in ns.expr:
                out.write(f"duel {text}\n")
                run_command(session, text, out)
            return 0
        if stdin is None and sys.stdin.isatty():  # pragma: no cover
            out.write("DUEL reproduction; 'help' for commands, "
                      "'quit' to exit\n")
        return repl(session, stdin=stdin, out=out)
    finally:
        if server is not None:
            server.stop()
        if qlog is not None:
            qlog.close()
        if accesslog is not None:
            accesslog.close()
        if sink is not None:
            sink.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
